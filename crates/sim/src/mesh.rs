//! Two-dimensional mesh interconnect model.
//!
//! The Paragon connects its nodes through a 2-D mesh of wormhole-routed
//! channels (200 MB/s raw per direction). Wormhole routing makes message
//! latency almost insensitive to distance — the per-hop cost is a few tens
//! of nanoseconds — so the model here charges a base wire latency, a small
//! per-hop term for dimension-ordered (X then Y) routing, and a serialization
//! term proportional to message size. Link contention is not modelled: in
//! every experiment the paper reports, software overheads exceed wire time
//! by two to three orders of magnitude, so the mesh is never the bottleneck.

use std::fmt;

/// Identifies a node of the multicomputer.
///
/// Node ids are dense indices `0..n`. By convention the compute nodes come
/// first and I/O (disk) nodes follow, mirroring a Paragon partition with its
/// service nodes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Geometry of the 2-D mesh.
#[derive(Clone, Copy, Debug)]
pub struct Mesh {
    cols: u16,
    nodes: u16,
}

impl Mesh {
    /// Builds a mesh for `nodes` nodes, laid out on a near-square grid
    /// (`cols` = ceil(sqrt(nodes))), matching how Paragon partitions are
    /// allocated.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: u16) -> Mesh {
        assert!(nodes > 0, "a mesh needs at least one node");
        let cols = (nodes as f64).sqrt().ceil() as u16;
        Mesh { cols, nodes }
    }

    /// Number of nodes in the mesh.
    pub fn len(&self) -> u16 {
        self.nodes
    }

    /// True if the mesh consists of a single node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Grid coordinates of a node under row-major placement.
    pub fn coords(&self, n: NodeId) -> (u16, u16) {
        (n.0 % self.cols, n.0 / self.cols)
    }

    /// Number of mesh hops between two nodes under dimension-ordered routing.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u32
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_mesh() {
        let m = Mesh::new(1);
        assert_eq!(m.hops(NodeId(0), NodeId(0)), 0);
    }

    #[test]
    fn square_mesh_coords() {
        let m = Mesh::new(16);
        assert_eq!(m.coords(NodeId(0)), (0, 0));
        assert_eq!(m.coords(NodeId(5)), (1, 1));
        assert_eq!(m.coords(NodeId(15)), (3, 3));
    }

    #[test]
    fn manhattan_hops() {
        let m = Mesh::new(16);
        // (0,0) -> (3,3) is 6 hops under X-then-Y routing.
        assert_eq!(m.hops(NodeId(0), NodeId(15)), 6);
        assert_eq!(m.hops(NodeId(15), NodeId(0)), 6);
        assert_eq!(m.hops(NodeId(1), NodeId(2)), 1);
    }

    #[test]
    fn non_square_counts() {
        // 72 nodes (the paper's machine) lay out on a 9-wide grid.
        let m = Mesh::new(72);
        assert_eq!(m.len(), 72);
        let max_hops = m
            .node_ids()
            .flat_map(|a| m.node_ids().map(move |b| (a, b)))
            .map(|(a, b)| m.hops(a, b))
            .max()
            .unwrap();
        assert!(max_hops <= 9 + 8);
    }

    #[test]
    fn hops_symmetric_and_triangle() {
        let m = Mesh::new(30);
        for a in m.node_ids() {
            assert_eq!(m.hops(a, a), 0);
            for b in m.node_ids() {
                assert_eq!(m.hops(a, b), m.hops(b, a));
                for c in m.node_ids().step_by(7) {
                    assert!(m.hops(a, c) <= m.hops(a, b) + m.hops(b, c));
                }
            }
        }
    }
}
