//! The deterministic event queue at the heart of the simulator.
//!
//! Events are totally ordered by `(time, sequence number)`: two events
//! scheduled for the same instant fire in the order they were scheduled.
//! This makes every run of the simulator bit-for-bit reproducible for a
//! given seed and workload, which the test suite relies on.
//!
//! Hot-path representation: the `(time, seq)` pair is packed into a single
//! `u128` key (`time << 64 | seq`), so every heap sift compares one
//! integer instead of a two-field tuple. Unsigned packing preserves the
//! lexicographic order exactly: times differ in the high 64 bits, ties
//! fall through to the sequence number in the low 64 bits.
//!
//! Payloads do *not* live in the heap. A simulated cluster message enum is
//! around a hundred bytes once wrapped in its delivery envelope, and a
//! binary-heap sift moves O(log n) elements per push/pop — at millions of
//! events per second that memcpy traffic dominated the event loop. The
//! heap instead orders 24-byte `(key, slot)` tickets while payloads sit
//! still in a slot arena, written once on push and moved out once on pop.
//! Freed slots are recycled through a free list, so steady-state
//! scheduling allocates nothing.

use std::collections::BinaryHeap;

use crate::time::Time;

/// A heap ticket: the packed ordering key plus the arena slot holding the
/// payload. `Ord` is reversed so the `BinaryHeap` max-heap pops the
/// earliest key first. Keys are unique (the sequence number is), so the
/// ordering is total and deterministic.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Ticket {
    /// `(time << 64) | seq` — see the module docs.
    key: u128,
    slot: u32,
}

impl Ticket {
    fn time(&self) -> Time {
        Time::from_nanos((self.key >> 64) as u64)
    }
}

impl PartialOrd for Ticket {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ticket {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap but we want the earliest event.
        other.key.cmp(&self.key)
    }
}

/// A priority queue of timestamped events with deterministic tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Ticket>,
    /// Slot arena: payload storage indexed by `Ticket::slot`.
    slots: Vec<Option<E>>,
    /// Recycled arena slots.
    free: Vec<u32>,
    next_seq: u64,
    /// High-water mark of pending events (capacity-planning telemetry).
    peak: usize,
    /// Pushes that found the pre-reserved heap capacity exhausted — each
    /// one implies a reallocation of the heap and (in lockstep) the arena.
    grow_events: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::with_capacity(0)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty queue with room for `capacity` pending events, so
    /// steady-state scheduling never reallocates.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            next_seq: 0,
            peak: 0,
            grow_events: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: Time, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = ((time.as_nanos() as u128) << 64) | seq as u128;
        if self.heap.len() == self.heap.capacity() {
            self.grow_events += 1;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(payload);
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Some(payload));
                s
            }
        };
        self.heap.push(Ticket { key, slot });
        if self.heap.len() > self.peak {
            self.peak = self.heap.len();
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let t = self.heap.pop()?;
        let payload = self.slots[t.slot as usize]
            .take()
            .expect("ticket points at an empty slot");
        self.free.push(t.slot);
        Some((t.time(), payload))
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|t| t.time())
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Largest number of simultaneously pending events observed.
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Number of pushes that outgrew the pre-reserved capacity. Zero means
    /// [`EventQueue::with_capacity`] was sized right for the run.
    pub fn grow_events(&self) -> u64 {
        self.grow_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(30), "c");
        q.push(Time::from_nanos(10), "a");
        q.push(Time::from_nanos(20), "b");
        assert_eq!(q.pop(), Some((Time::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((Time::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((Time::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::ZERO + Dur::from_micros(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_nanos(7), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(Time::from_nanos(7)));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(10), 1);
        q.push(Time::from_nanos(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(Time::from_nanos(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }

    #[test]
    fn packed_key_round_trips_extreme_times() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(u64::MAX), "max");
        q.push(Time::ZERO, "zero");
        assert_eq!(q.pop(), Some((Time::ZERO, "zero")));
        assert_eq!(q.pop(), Some((Time::from_nanos(u64::MAX), "max")));
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(512);
        assert!(q.is_empty());
        for i in (0..100u64).rev() {
            q.push(Time::from_nanos(i), i);
        }
        for i in 0..100u64 {
            assert_eq!(q.pop(), Some((Time::from_nanos(i), i)));
        }
    }

    #[test]
    fn slots_are_recycled() {
        // Interleaved push/pop must not grow the arena past the peak.
        let mut q = EventQueue::with_capacity(4);
        for round in 0..1000u64 {
            q.push(Time::from_nanos(round), round);
            q.push(Time::from_nanos(round), round + 1);
            assert_eq!(q.pop().unwrap().1, round);
            assert_eq!(q.pop().unwrap().1, round + 1);
        }
        assert!(q.peak_len() <= 2);
        assert_eq!(q.grow_events(), 0);
        assert!(q.slots.len() <= 2, "arena grew: {}", q.slots.len());
    }

    #[test]
    fn growth_is_instrumented() {
        let mut q = EventQueue::with_capacity(2);
        for i in 0..8u64 {
            q.push(Time::from_nanos(i), i);
        }
        assert_eq!(q.peak_len(), 8);
        assert!(q.grow_events() > 0);
        // Telemetry never perturbs ordering.
        for i in 0..8u64 {
            assert_eq!(q.pop(), Some((Time::from_nanos(i), i)));
        }
    }
}
