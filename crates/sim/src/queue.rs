//! The deterministic event queue at the heart of the simulator.
//!
//! Events are totally ordered by `(time, sequence number)`: two events
//! scheduled for the same instant fire in the order they were scheduled.
//! This makes every run of the simulator bit-for-bit reproducible for a
//! given seed and workload, which the test suite relies on.
//!
//! Hot-path representation: the `(time, seq)` pair is packed into a single
//! `u128` key (`time << 64 | seq`), so every heap sift compares one
//! integer instead of a two-field tuple. Unsigned packing preserves the
//! lexicographic order exactly: times differ in the high 64 bits, ties
//! fall through to the sequence number in the low 64 bits.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

/// A scheduled event carrying a payload of type `E`.
struct Scheduled<E> {
    /// `(time << 64) | seq` — see the module docs.
    key: u128,
    payload: E,
}

impl<E> Scheduled<E> {
    fn time(&self) -> Time {
        Time::from_nanos((self.key >> 64) as u64)
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we want the earliest event.
        other.key.cmp(&self.key)
    }
}

/// A priority queue of timestamped events with deterministic tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty queue with room for `capacity` pending events, so
    /// steady-state scheduling never reallocates.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: Time, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = ((time.as_nanos() as u128) << 64) | seq as u128;
        self.heap.push(Scheduled { key, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|s| (s.time(), s.payload))
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.time())
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(30), "c");
        q.push(Time::from_nanos(10), "a");
        q.push(Time::from_nanos(20), "b");
        assert_eq!(q.pop(), Some((Time::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((Time::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((Time::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::ZERO + Dur::from_micros(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_nanos(7), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(Time::from_nanos(7)));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(10), 1);
        q.push(Time::from_nanos(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(Time::from_nanos(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }

    #[test]
    fn packed_key_round_trips_extreme_times() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(u64::MAX), "max");
        q.push(Time::ZERO, "zero");
        assert_eq!(q.pop(), Some((Time::ZERO, "zero")));
        assert_eq!(q.pop(), Some((Time::from_nanos(u64::MAX), "max")));
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(512);
        assert!(q.is_empty());
        for i in (0..100u64).rev() {
            q.push(Time::from_nanos(i), i);
        }
        for i in 0..100u64 {
            assert_eq!(q.pop(), Some((Time::from_nanos(i), i)));
        }
    }
}
