//! Disk model for I/O nodes.
//!
//! A deliberately simple 1996-class disk: an access that continues where the
//! previous one ended streams at the sustained media bandwidth; any other
//! access first pays a positioning (seek + rotational) delay. This is enough
//! to reproduce the two disk effects the paper's numbers show: the ~25 ms
//! dirty-page writeback penalty in XMM's Table 1 rows, and the ~1.5 MB/s
//! single-node mapped-file read rate of Table 2 (sequential streaming).
//!
//! The disk is a serial resource: requests queue behind each other. Callers
//! ask the model *when* a request issued at some time completes; occupancy
//! is tracked internally.

use crate::machine::CostModel;
use crate::time::{Dur, Time};

/// Kind of disk access, for statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiskOp {
    /// Read from the media.
    Read,
    /// Write to the media.
    Write,
}

/// State of one disk drive.
#[derive(Clone, Debug)]
pub struct Disk {
    /// Byte offset at which the head will sit after the last queued access
    /// (`u64::MAX` = parked: the first access always pays positioning).
    head_pos: u64,
    /// Instant at which the last queued access completes.
    free_at: Time,
    /// Total accesses served, by kind.
    pub reads: u64,
    /// Total write accesses served.
    pub writes: u64,
}

impl Default for Disk {
    fn default() -> Self {
        Disk::new()
    }
}

impl Disk {
    /// A fresh disk with the head parked (first access pays positioning).
    pub fn new() -> Disk {
        Disk {
            head_pos: u64::MAX,
            free_at: Time::ZERO,
            reads: 0,
            writes: 0,
        }
    }

    /// Queues an access of `len` bytes at byte offset `pos`, issued at
    /// `now`, and returns its completion time.
    ///
    /// Sequential continuation (the access starts exactly where the head
    /// sits) skips the positioning delay.
    pub fn access(&mut self, cost: &CostModel, now: Time, op: DiskOp, pos: u64, len: u32) -> Time {
        let start = self.free_at.max(now);
        let mut t = Dur::ZERO;
        if pos != self.head_pos {
            t += cost.disk_position;
        }
        t += Dur::from_nanos(len as u64 * 1_000_000_000 / cost.disk_bandwidth_bytes_per_s);
        self.head_pos = pos + len as u64;
        self.free_at = start + t;
        match op {
            DiskOp::Read => self.reads += 1,
            DiskOp::Write => self.writes += 1,
        }
        self.free_at
    }

    /// Instant at which all queued work completes.
    pub fn free_at(&self) -> Time {
        self.free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn sequential_access_skips_positioning() {
        let c = cost();
        let mut d = Disk::new();
        let t1 = d.access(&c, Time::ZERO, DiskOp::Read, 0, 8192);
        let t2 = d.access(&c, t1, DiskOp::Read, 8192, 8192);
        let first = t1.since(Time::ZERO);
        let second = t2.since(t1);
        // The first access pays positioning (parked head); the sequential
        // continuation is pure transfer.
        assert!(first >= c.disk_position);
        assert!(second < first);
        // 8 KB at ~2.2 MB/s is ~3.6 ms of transfer.
        assert!(second.as_millis_f64() > 2.0 && second.as_millis_f64() < 5.0);
    }

    #[test]
    fn random_access_pays_positioning() {
        let c = cost();
        let mut d = Disk::new();
        let t1 = d.access(&c, Time::ZERO, DiskOp::Write, 1 << 20, 8192);
        assert!(t1.since(Time::ZERO) >= c.disk_position);
    }

    #[test]
    fn requests_queue() {
        let c = cost();
        let mut d = Disk::new();
        let t1 = d.access(&c, Time::ZERO, DiskOp::Read, 0, 8192);
        // Issued "in the past" relative to the disk's backlog: starts after t1.
        let t2 = d.access(&c, Time::ZERO, DiskOp::Read, 8192, 8192);
        assert!(t2 > t1);
        assert_eq!(d.reads, 2);
    }

    #[test]
    fn counters_track_ops() {
        let c = cost();
        let mut d = Disk::new();
        d.access(&c, Time::ZERO, DiskOp::Write, 0, 4096);
        d.access(&c, Time::ZERO, DiskOp::Read, 4096, 4096);
        assert_eq!((d.reads, d.writes), (1, 1));
    }
}
