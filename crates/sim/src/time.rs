//! Virtual time for the discrete-event simulation.
//!
//! Two newtypes keep instants and durations apart: [`Time`] is an absolute
//! point on the simulation clock, [`Dur`] is a span. Both count nanoseconds
//! in a `u64`, which covers ~584 simulated years — far beyond any experiment
//! in this repository (the longest, the 64-node XMM EM3D run, stays below
//! one simulated hour).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl Time {
    /// The simulation epoch.
    pub const ZERO: Time = Time(0);

    /// Largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Builds an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Time {
        Time(ns)
    }

    /// Raw nanoseconds since the simulation epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in milliseconds, for reporting.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Value in seconds, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; the simulation never runs
    /// its clock backwards, so this indicates a bookkeeping bug.
    pub fn since(self, earlier: Time) -> Dur {
        assert!(
            earlier.0 <= self.0,
            "time went backwards: {earlier:?} > {self:?}"
        );
        Dur(self.0 - earlier.0)
    }

    /// Element-wise maximum of two instants.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }
}

impl Dur {
    /// The empty span.
    pub const ZERO: Dur = Dur(0);

    /// Builds a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Dur {
        Dur(ns)
    }

    /// Builds a span from microseconds.
    pub const fn from_micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// Builds a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    /// Builds a span from a floating-point number of microseconds.
    ///
    /// Used by the cost model, whose calibration constants are most
    /// naturally written in microseconds. Negative inputs clamp to zero.
    pub fn from_micros_f64(us: f64) -> Dur {
        Dur((us.max(0.0) * 1_000.0).round() as u64)
    }

    /// Builds a span from a floating-point number of milliseconds.
    pub fn from_millis_f64(ms: f64) -> Dur {
        Dur((ms.max(0.0) * 1.0e6).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds, for reporting.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1.0e3
    }

    /// Value in milliseconds, for reporting.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Value in seconds, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// True if this is the empty span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Element-wise maximum of two spans.
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// Saturating subtraction: `self - other`, or zero if negative.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        Dur(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_dur() {
        let t = Time::from_nanos(10) + Dur::from_nanos(5);
        assert_eq!(t.as_nanos(), 15);
    }

    #[test]
    fn since_measures_span() {
        let a = Time::from_nanos(100);
        let b = Time::from_nanos(350);
        assert_eq!(b.since(a), Dur::from_nanos(250));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_rejects_backwards() {
        let _ = Time::from_nanos(1).since(Time::from_nanos(2));
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(Dur::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Dur::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(Dur::from_micros_f64(1.5).as_nanos(), 1_500);
        assert_eq!(Dur::from_millis_f64(0.25).as_nanos(), 250_000);
        assert!((Dur::from_millis(8).as_millis_f64() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn negative_float_clamps() {
        assert_eq!(Dur::from_micros_f64(-4.0), Dur::ZERO);
    }

    #[test]
    fn dur_arithmetic() {
        let d = Dur::from_micros(10) * 3 / 2;
        assert_eq!(d, Dur::from_micros(15));
        assert_eq!(
            Dur::from_micros(5).saturating_sub(Dur::from_micros(9)),
            Dur::ZERO
        );
        let total: Dur = [Dur::from_nanos(1), Dur::from_nanos(2)].into_iter().sum();
        assert_eq!(total, Dur::from_nanos(3));
    }

    #[test]
    fn ordering_and_max() {
        assert!(Time::from_nanos(1) < Time::from_nanos(2));
        assert_eq!(
            Time::from_nanos(1).max(Time::from_nanos(2)),
            Time::from_nanos(2)
        );
        assert_eq!(
            Dur::from_nanos(7).max(Dur::from_nanos(3)),
            Dur::from_nanos(7)
        );
    }
}
