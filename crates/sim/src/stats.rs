//! Simulation statistics: counters and latency tallies.
//!
//! Keys are static strings, but the hot path never compares them: a key is
//! *interned* once into a dense [`StatId`] / [`TallyId`] index, and every
//! subsequent bump is a direct `Vec` slot update. The string-keyed API
//! ([`Stats::bump`], [`Stats::add`], [`Stats::sample`]) remains for cold
//! call sites and interns on first use with a pointer-equality fast path
//! (same `&'static str` literal ⇒ same pointer, no byte compare).
//! Sorted-by-key iteration — which the deterministic reports rely on —
//! happens only at report time ([`Stats::counters`], [`Stats::tallies`]).
//!
//! Interned ids survive [`Stats::reset`]: harnesses reset between
//! benchmark phases, and cached ids held by the event loop must stay
//! valid across phases.

use std::fmt;

use crate::time::Dur;

/// Running aggregate of a duration-valued sample stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct Tally {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: Dur,
    /// Smallest sample (undefined if `count == 0`).
    pub min: Dur,
    /// Largest sample.
    pub max: Dur,
}

impl Tally {
    /// Records one sample.
    pub fn record(&mut self, d: Dur) {
        if self.count == 0 {
            self.min = d;
            self.max = d;
        } else {
            self.min = self.min.min(d);
            self.max = self.max.max(d);
        }
        self.count += 1;
        self.sum += d;
    }

    /// Arithmetic mean of the samples, or zero if none were recorded.
    pub fn mean(&self) -> Dur {
        if self.count == 0 {
            Dur::ZERO
        } else {
            self.sum / self.count
        }
    }
}

impl fmt::Display for Tally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} min={} max={}",
            self.count,
            self.mean(),
            self.min,
            self.max
        )
    }
}

/// Interned handle for a counter; `Vec`-indexed, no string compare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatId(u32);

/// Interned handle for a duration tally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TallyId(u32);

fn intern(names: &mut Vec<&'static str>, key: &'static str) -> u32 {
    for (i, n) in names.iter().enumerate() {
        // Pointer equality first: the same literal resolves without ever
        // touching the bytes. Content equality keeps duplicated literals
        // (e.g. across codegen units) mapped to one id.
        if std::ptr::eq(*n, key) || *n == key {
            return i as u32;
        }
    }
    names.push(key);
    (names.len() - 1) as u32
}

/// All statistics gathered during a simulation run.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    counter_names: Vec<&'static str>,
    counters: Vec<u64>,
    tally_names: Vec<&'static str>,
    tallies: Vec<Tally>,
}

impl Stats {
    /// Creates an empty statistics store.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Interns `key` as a counter, returning its stable id. Idempotent;
    /// the id stays valid across [`Stats::reset`].
    pub fn counter_id(&mut self, key: &'static str) -> StatId {
        let id = intern(&mut self.counter_names, key);
        if self.counters.len() <= id as usize {
            self.counters.resize(id as usize + 1, 0);
        }
        StatId(id)
    }

    /// Interns `key` as a tally, returning its stable id.
    pub fn tally_id(&mut self, key: &'static str) -> TallyId {
        let id = intern(&mut self.tally_names, key);
        if self.tallies.len() <= id as usize {
            self.tallies.resize(id as usize + 1, Tally::default());
        }
        TallyId(id)
    }

    /// Adds `n` to the counter `id` — the hot path, one indexed add.
    #[inline]
    pub fn add_id(&mut self, id: StatId, n: u64) {
        self.counters[id.0 as usize] += n;
    }

    /// Increments the counter `id` by one.
    #[inline]
    pub fn bump_id(&mut self, id: StatId) {
        self.add_id(id, 1);
    }

    /// Current value of the counter `id`.
    #[inline]
    pub fn counter_value(&self, id: StatId) -> u64 {
        self.counters[id.0 as usize]
    }

    /// Records a duration sample under the tally `id` — the hot path.
    #[inline]
    pub fn sample_id(&mut self, id: TallyId, d: Dur) {
        self.tallies[id.0 as usize].record(d);
    }

    /// Adds `n` to counter `key` (cold path: interns on first use).
    pub fn add(&mut self, key: &'static str, n: u64) {
        let id = self.counter_id(key);
        self.add_id(id, n);
    }

    /// Increments counter `key` by one.
    pub fn bump(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Current value of counter `key` (zero if never touched).
    pub fn counter(&self, key: &'static str) -> u64 {
        self.counter_names
            .iter()
            .position(|n| std::ptr::eq(*n, key) || *n == key)
            .map_or(0, |i| self.counters[i])
    }

    /// Records a duration sample under `key`.
    pub fn sample(&mut self, key: &'static str, d: Dur) {
        let id = self.tally_id(key);
        self.sample_id(id, d);
    }

    /// The tally for `key`, if any samples were recorded.
    pub fn tally(&self, key: &'static str) -> Option<&Tally> {
        self.tally_names
            .iter()
            .position(|n| std::ptr::eq(*n, key) || *n == key)
            .map(|i| &self.tallies[i])
            .filter(|t| t.count > 0)
    }

    /// Iterates over all touched counters in key order (report time only;
    /// this sorts). Counters that are zero — interned but never bumped
    /// since the last reset — are skipped.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        let mut out: Vec<(&'static str, u64)> = self
            .counter_names
            .iter()
            .zip(&self.counters)
            .filter(|(_, v)| **v > 0)
            .map(|(k, v)| (*k, *v))
            .collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        out.into_iter()
    }

    /// Iterates over all non-empty tallies in key order (report time only).
    pub fn tallies(&self) -> impl Iterator<Item = (&'static str, &Tally)> + '_ {
        let mut out: Vec<(&'static str, &Tally)> = self
            .tally_names
            .iter()
            .zip(&self.tallies)
            .filter(|(_, t)| t.count > 0)
            .map(|(k, t)| (*k, t))
            .collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        out.into_iter()
    }

    /// Clears all recorded data (used between benchmark phases so warm-up
    /// traffic does not pollute the measurement). Interned ids remain
    /// valid — only the values are zeroed.
    pub fn reset(&mut self) {
        self.counters.fill(0);
        self.tallies.fill(Tally::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.bump("msg");
        s.add("msg", 4);
        assert_eq!(s.counter("msg"), 5);
        assert_eq!(s.counter("other"), 0);
    }

    #[test]
    fn tally_mean_min_max() {
        let mut t = Tally::default();
        t.record(Dur::from_micros(10));
        t.record(Dur::from_micros(30));
        t.record(Dur::from_micros(20));
        assert_eq!(t.count, 3);
        assert_eq!(t.mean(), Dur::from_micros(20));
        assert_eq!(t.min, Dur::from_micros(10));
        assert_eq!(t.max, Dur::from_micros(30));
    }

    #[test]
    fn empty_tally_mean_is_zero() {
        assert_eq!(Tally::default().mean(), Dur::ZERO);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = Stats::new();
        s.bump("a");
        s.sample("b", Dur::from_nanos(1));
        s.reset();
        assert_eq!(s.counter("a"), 0);
        assert!(s.tally("b").is_none());
    }

    #[test]
    fn iteration_is_sorted() {
        let mut s = Stats::new();
        s.bump("zz");
        s.bump("aa");
        let keys: Vec<_> = s.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["aa", "zz"]);
    }

    #[test]
    fn interned_ids_survive_reset() {
        let mut s = Stats::new();
        let c = s.counter_id("net.messages");
        let t = s.tally_id("fault.ms");
        s.add_id(c, 3);
        s.sample_id(t, Dur::from_micros(5));
        s.reset();
        assert_eq!(s.counter_value(c), 0);
        s.bump_id(c);
        s.sample_id(t, Dur::from_micros(7));
        assert_eq!(s.counter("net.messages"), 1);
        assert_eq!(s.tally("fault.ms").unwrap().mean(), Dur::from_micros(7));
    }

    #[test]
    fn interning_is_idempotent() {
        let mut s = Stats::new();
        let a = s.counter_id("k");
        let b = s.counter_id("k");
        assert_eq!(a, b);
        s.bump_id(a);
        s.bump_id(b);
        assert_eq!(s.counter("k"), 2);
    }

    #[test]
    fn zero_counters_are_not_reported() {
        let mut s = Stats::new();
        let _ = s.counter_id("interned.but.untouched");
        s.bump("touched");
        let keys: Vec<_> = s.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["touched"]);
    }
}
