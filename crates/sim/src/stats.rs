//! Simulation statistics: counters and latency tallies.
//!
//! Keys are static strings; storage is a `BTreeMap` so that reports iterate
//! in a stable order (the simulator is deterministic end to end).

use std::collections::BTreeMap;
use std::fmt;

use crate::time::Dur;

/// Running aggregate of a duration-valued sample stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct Tally {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: Dur,
    /// Smallest sample (undefined if `count == 0`).
    pub min: Dur,
    /// Largest sample.
    pub max: Dur,
}

impl Tally {
    /// Records one sample.
    pub fn record(&mut self, d: Dur) {
        if self.count == 0 {
            self.min = d;
            self.max = d;
        } else {
            self.min = self.min.min(d);
            self.max = self.max.max(d);
        }
        self.count += 1;
        self.sum += d;
    }

    /// Arithmetic mean of the samples, or zero if none were recorded.
    pub fn mean(&self) -> Dur {
        if self.count == 0 {
            Dur::ZERO
        } else {
            self.sum / self.count
        }
    }
}

impl fmt::Display for Tally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} min={} max={}",
            self.count,
            self.mean(),
            self.min,
            self.max
        )
    }
}

/// All statistics gathered during a simulation run.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    counters: BTreeMap<&'static str, u64>,
    tallies: BTreeMap<&'static str, Tally>,
}

impl Stats {
    /// Creates an empty statistics store.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Adds `n` to counter `key`.
    pub fn add(&mut self, key: &'static str, n: u64) {
        *self.counters.entry(key).or_insert(0) += n;
    }

    /// Increments counter `key` by one.
    pub fn bump(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Current value of counter `key` (zero if never touched).
    pub fn counter(&self, key: &'static str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Records a duration sample under `key`.
    pub fn sample(&mut self, key: &'static str, d: Dur) {
        self.tallies.entry(key).or_default().record(d);
    }

    /// The tally for `key`, if any samples were recorded.
    pub fn tally(&self, key: &'static str) -> Option<&Tally> {
        self.tallies.get(key)
    }

    /// Iterates over all counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates over all tallies in key order.
    pub fn tallies(&self) -> impl Iterator<Item = (&'static str, &Tally)> + '_ {
        self.tallies.iter().map(|(k, v)| (*k, v))
    }

    /// Clears all recorded data (used between benchmark phases so warm-up
    /// traffic does not pollute the measurement).
    pub fn reset(&mut self) {
        self.counters.clear();
        self.tallies.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.bump("msg");
        s.add("msg", 4);
        assert_eq!(s.counter("msg"), 5);
        assert_eq!(s.counter("other"), 0);
    }

    #[test]
    fn tally_mean_min_max() {
        let mut t = Tally::default();
        t.record(Dur::from_micros(10));
        t.record(Dur::from_micros(30));
        t.record(Dur::from_micros(20));
        assert_eq!(t.count, 3);
        assert_eq!(t.mean(), Dur::from_micros(20));
        assert_eq!(t.min, Dur::from_micros(10));
        assert_eq!(t.max, Dur::from_micros(30));
    }

    #[test]
    fn empty_tally_mean_is_zero() {
        assert_eq!(Tally::default().mean(), Dur::ZERO);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = Stats::new();
        s.bump("a");
        s.sample("b", Dur::from_nanos(1));
        s.reset();
        assert_eq!(s.counter("a"), 0);
        assert!(s.tally("b").is_none());
    }

    #[test]
    fn iteration_is_sorted() {
        let mut s = Stats::new();
        s.bump("zz");
        s.bump("aa");
        let keys: Vec<_> = s.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["aa", "zz"]);
    }
}
