//! Simulation statistics: counters and latency tallies.
//!
//! Keys are static strings, but the hot path never compares them: a key is
//! *interned* once into a dense [`StatId`] / [`TallyId`] index, and every
//! subsequent bump is a direct `Vec` slot update. The string-keyed API
//! ([`Stats::bump`], [`Stats::add`], [`Stats::sample`]) remains for cold
//! call sites and interns on first use with a pointer-equality fast path
//! (same `&'static str` literal ⇒ same pointer, no byte compare).
//! Sorted-by-key iteration — which the deterministic reports rely on —
//! happens only at report time ([`Stats::counters`], [`Stats::tallies`]).
//!
//! Interned ids survive [`Stats::reset`]: harnesses reset between
//! benchmark phases, and cached ids held by the event loop must stay
//! valid across phases.

use std::fmt;

use crate::time::Dur;

/// Running aggregate of a duration-valued sample stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct Tally {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: Dur,
    /// Smallest sample (undefined if `count == 0`).
    pub min: Dur,
    /// Largest sample.
    pub max: Dur,
}

impl Tally {
    /// Records one sample.
    pub fn record(&mut self, d: Dur) {
        if self.count == 0 {
            self.min = d;
            self.max = d;
        } else {
            self.min = self.min.min(d);
            self.max = self.max.max(d);
        }
        self.count += 1;
        self.sum += d;
    }

    /// Arithmetic mean of the samples, or zero if none were recorded.
    pub fn mean(&self) -> Dur {
        if self.count == 0 {
            Dur::ZERO
        } else {
            self.sum / self.count
        }
    }
}

impl fmt::Display for Tally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} min={} max={}",
            self.count,
            self.mean(),
            self.min,
            self.max
        )
    }
}

/// Number of log₂ latency buckets a [`Histogram`] keeps. Bucket `i` holds
/// samples in `[2^i, 2^(i+1))` nanoseconds; 48 buckets cover everything up
/// to ~78 hours, far beyond any simulated latency.
pub const HIST_BUCKETS: usize = 48;

/// Log₂-bucketed latency histogram.
///
/// A [`Tally`] keeps count/sum/min/max; a histogram additionally answers
/// distribution questions ("what is the p99 fault latency?") at the cost of
/// one fixed array per key. Bucketing is power-of-two in nanoseconds, so
/// recording is two instructions and percentiles are accurate to a factor
/// of two — plenty for separating a 2 ms ASVM fault from a 38 ms XMM one.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: Dur,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: Dur::ZERO,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    fn bucket_of(d: Dur) -> usize {
        let ns = d.as_nanos();
        let b = (64 - ns.leading_zeros()) as usize; // 0 for 0 ns, 1 for 1 ns, ...
        b.saturating_sub(1).min(HIST_BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, d: Dur) {
        self.count += 1;
        self.sum += d;
        self.buckets[Self::bucket_of(d)] += 1;
    }

    /// Arithmetic mean of the samples, or zero if none were recorded.
    pub fn mean(&self) -> Dur {
        if self.count == 0 {
            Dur::ZERO
        } else {
            self.sum / self.count
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`), or zero if the histogram is empty.
    pub fn quantile(&self, q: f64) -> Dur {
        if self.count == 0 {
            return Dur::ZERO;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Dur::from_nanos(1u64 << (i + 1).min(63));
            }
        }
        Dur::from_nanos(u64::MAX)
    }

    /// Occupied buckets as `(lower_bound, count)` pairs.
    pub fn buckets(&self) -> impl Iterator<Item = (Dur, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| (Dur::from_nanos(1u64 << i), *n))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50≤{} p99≤{}",
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99)
        )
    }
}

/// Interned handle for a counter; `Vec`-indexed, no string compare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatId(u32);

/// Interned handle for a duration tally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TallyId(u32);

/// Interned handle for a histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistId(u32);

/// Open-addressed map from `&'static str` *identity* (its address) to an
/// interned id. String-keyed bumps used to re-scan the name list on every
/// call — O(names) pointer compares per message at high event rates; this
/// makes the lookup one multiplicative hash and (almost always) one probe.
/// Distinct literals with equal content hash to different pointers, so both
/// may occupy slots mapping to the same id — the id, not the pointer, is
/// the identity that matters.
#[derive(Clone, Debug, Default)]
struct PtrCache {
    /// `(key address, id + 1)` slots; an all-zero slot is empty. Length is
    /// always a power of two, kept at most half full.
    slots: Vec<(usize, u32)>,
    len: usize,
}

impl PtrCache {
    #[inline]
    fn hash(ptr: usize) -> usize {
        // Fibonacci hashing; string literals are aligned, so mix the high
        // bits back down before masking.
        ptr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32
    }

    #[inline]
    fn get(&self, ptr: usize) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = Self::hash(ptr) & mask;
        loop {
            let (p, id) = self.slots[i];
            if p == ptr {
                return Some(id - 1);
            }
            if p == 0 {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    fn insert(&mut self, ptr: usize, id: u32) {
        if self.slots.len() < (self.len + 1) * 2 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = Self::hash(ptr) & mask;
        while self.slots[i].0 != 0 {
            i = (i + 1) & mask;
        }
        self.slots[i] = (ptr, id + 1);
        self.len += 1;
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(64);
        let old = std::mem::replace(&mut self.slots, vec![(0, 0); new_cap]);
        let mask = new_cap - 1;
        for (p, id) in old {
            if p != 0 {
                let mut i = Self::hash(p) & mask;
                while self.slots[i].0 != 0 {
                    i = (i + 1) & mask;
                }
                self.slots[i] = (p, id);
            }
        }
    }
}

fn intern(names: &mut Vec<&'static str>, cache: &mut PtrCache, key: &'static str) -> u32 {
    // Pointer-identity fast path: the same literal resolves without ever
    // touching the bytes.
    let ptr = key.as_ptr() as usize;
    if let Some(id) = cache.get(ptr) {
        return id;
    }
    // Slow path (once per distinct literal): content equality keeps
    // duplicated literals (e.g. across codegen units) mapped to one id.
    let id = match names.iter().position(|n| *n == key) {
        Some(i) => i as u32,
        None => {
            names.push(key);
            (names.len() - 1) as u32
        }
    };
    cache.insert(ptr, id);
    id
}

/// All statistics gathered during a simulation run.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    counter_names: Vec<&'static str>,
    counter_cache: PtrCache,
    counters: Vec<u64>,
    tally_names: Vec<&'static str>,
    tally_cache: PtrCache,
    tallies: Vec<Tally>,
    hist_names: Vec<&'static str>,
    hist_cache: PtrCache,
    hists: Vec<Histogram>,
}

impl Stats {
    /// Creates an empty statistics store.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Interns `key` as a counter, returning its stable id. Idempotent;
    /// the id stays valid across [`Stats::reset`].
    pub fn counter_id(&mut self, key: &'static str) -> StatId {
        let id = intern(&mut self.counter_names, &mut self.counter_cache, key);
        if self.counters.len() <= id as usize {
            self.counters.resize(id as usize + 1, 0);
        }
        StatId(id)
    }

    /// Interns `key` as a tally, returning its stable id.
    pub fn tally_id(&mut self, key: &'static str) -> TallyId {
        let id = intern(&mut self.tally_names, &mut self.tally_cache, key);
        if self.tallies.len() <= id as usize {
            self.tallies.resize(id as usize + 1, Tally::default());
        }
        TallyId(id)
    }

    /// Interns `key` as a histogram, returning its stable id.
    pub fn hist_id(&mut self, key: &'static str) -> HistId {
        let id = intern(&mut self.hist_names, &mut self.hist_cache, key);
        if self.hists.len() <= id as usize {
            self.hists.resize(id as usize + 1, Histogram::default());
        }
        HistId(id)
    }

    /// Adds `n` to the counter `id` — the hot path, one indexed add.
    #[inline]
    pub fn add_id(&mut self, id: StatId, n: u64) {
        self.counters[id.0 as usize] += n;
    }

    /// Increments the counter `id` by one.
    #[inline]
    pub fn bump_id(&mut self, id: StatId) {
        self.add_id(id, 1);
    }

    /// Current value of the counter `id`.
    #[inline]
    pub fn counter_value(&self, id: StatId) -> u64 {
        self.counters[id.0 as usize]
    }

    /// Records a duration sample under the tally `id` — the hot path.
    #[inline]
    pub fn sample_id(&mut self, id: TallyId, d: Dur) {
        self.tallies[id.0 as usize].record(d);
    }

    /// Records a duration sample in the histogram `id` — the hot path.
    #[inline]
    pub fn record_id(&mut self, id: HistId, d: Dur) {
        self.hists[id.0 as usize].record(d);
    }

    /// Adds `n` to counter `key` (cold path: interns on first use).
    pub fn add(&mut self, key: &'static str, n: u64) {
        let id = self.counter_id(key);
        self.add_id(id, n);
    }

    /// Increments counter `key` by one.
    pub fn bump(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Current value of counter `key` (zero if never touched).
    pub fn counter(&self, key: &'static str) -> u64 {
        self.counter_names
            .iter()
            .position(|n| std::ptr::eq(*n, key) || *n == key)
            .map_or(0, |i| self.counters[i])
    }

    /// Records a duration sample under `key`.
    pub fn sample(&mut self, key: &'static str, d: Dur) {
        let id = self.tally_id(key);
        self.sample_id(id, d);
    }

    /// The tally for `key`, if any samples were recorded.
    pub fn tally(&self, key: &'static str) -> Option<&Tally> {
        self.tally_names
            .iter()
            .position(|n| std::ptr::eq(*n, key) || *n == key)
            .map(|i| &self.tallies[i])
            .filter(|t| t.count > 0)
    }

    /// Records a duration sample in histogram `key`.
    pub fn record(&mut self, key: &'static str, d: Dur) {
        let id = self.hist_id(key);
        self.record_id(id, d);
    }

    /// The histogram for `key`, if any samples were recorded.
    pub fn hist(&self, key: &'static str) -> Option<&Histogram> {
        self.hist_names
            .iter()
            .position(|n| std::ptr::eq(*n, key) || *n == key)
            .map(|i| &self.hists[i])
            .filter(|h| h.count > 0)
    }

    /// Iterates over all non-empty histograms in key order (report time
    /// only).
    pub fn hists(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        let mut out: Vec<(&'static str, &Histogram)> = self
            .hist_names
            .iter()
            .zip(&self.hists)
            .filter(|(_, h)| h.count > 0)
            .map(|(k, h)| (*k, h))
            .collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        out.into_iter()
    }

    /// Iterates over all touched counters in key order (report time only;
    /// this sorts). Counters that are zero — interned but never bumped
    /// since the last reset — are skipped.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        let mut out: Vec<(&'static str, u64)> = self
            .counter_names
            .iter()
            .zip(&self.counters)
            .filter(|(_, v)| **v > 0)
            .map(|(k, v)| (*k, *v))
            .collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        out.into_iter()
    }

    /// Iterates over all non-empty tallies in key order (report time only).
    pub fn tallies(&self) -> impl Iterator<Item = (&'static str, &Tally)> + '_ {
        let mut out: Vec<(&'static str, &Tally)> = self
            .tally_names
            .iter()
            .zip(&self.tallies)
            .filter(|(_, t)| t.count > 0)
            .map(|(k, t)| (*k, t))
            .collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        out.into_iter()
    }

    /// Clears all recorded data (used between benchmark phases so warm-up
    /// traffic does not pollute the measurement). Interned ids remain
    /// valid — only the values are zeroed.
    pub fn reset(&mut self) {
        self.counters.fill(0);
        self.tallies.fill(Tally::default());
        self.hists.fill(Histogram::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.bump("msg");
        s.add("msg", 4);
        assert_eq!(s.counter("msg"), 5);
        assert_eq!(s.counter("other"), 0);
    }

    #[test]
    fn tally_mean_min_max() {
        let mut t = Tally::default();
        t.record(Dur::from_micros(10));
        t.record(Dur::from_micros(30));
        t.record(Dur::from_micros(20));
        assert_eq!(t.count, 3);
        assert_eq!(t.mean(), Dur::from_micros(20));
        assert_eq!(t.min, Dur::from_micros(10));
        assert_eq!(t.max, Dur::from_micros(30));
    }

    #[test]
    fn empty_tally_mean_is_zero() {
        assert_eq!(Tally::default().mean(), Dur::ZERO);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = Stats::new();
        s.bump("a");
        s.sample("b", Dur::from_nanos(1));
        s.reset();
        assert_eq!(s.counter("a"), 0);
        assert!(s.tally("b").is_none());
    }

    #[test]
    fn iteration_is_sorted() {
        let mut s = Stats::new();
        s.bump("zz");
        s.bump("aa");
        let keys: Vec<_> = s.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["aa", "zz"]);
    }

    #[test]
    fn interned_ids_survive_reset() {
        let mut s = Stats::new();
        let c = s.counter_id("net.messages");
        let t = s.tally_id("fault.ms");
        s.add_id(c, 3);
        s.sample_id(t, Dur::from_micros(5));
        s.reset();
        assert_eq!(s.counter_value(c), 0);
        s.bump_id(c);
        s.sample_id(t, Dur::from_micros(7));
        assert_eq!(s.counter("net.messages"), 1);
        assert_eq!(s.tally("fault.ms").unwrap().mean(), Dur::from_micros(7));
    }

    #[test]
    fn interning_is_idempotent() {
        let mut s = Stats::new();
        let a = s.counter_id("k");
        let b = s.counter_id("k");
        assert_eq!(a, b);
        s.bump_id(a);
        s.bump_id(b);
        assert_eq!(s.counter("k"), 2);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        for us in [10u64, 10, 10, 10, 10, 10, 10, 10, 10, 5000] {
            h.record(Dur::from_micros(us));
        }
        assert_eq!(h.count, 10);
        // p50 lands in the 10 µs bucket; the bound is within 2× of 10 µs.
        assert!(h.quantile(0.5) <= Dur::from_micros(20));
        // The single 5 ms outlier dominates p99.
        assert!(h.quantile(0.99) >= Dur::from_micros(5000));
        assert!(h.quantile(0.99) <= Dur::from_micros(10_000));
        assert_eq!(h.buckets().map(|(_, n)| n).sum::<u64>(), 10);
    }

    #[test]
    fn histogram_via_stats_and_reset() {
        let mut s = Stats::new();
        let id = s.hist_id("fault.hist");
        s.record_id(id, Dur::from_micros(7));
        s.record("fault.hist", Dur::from_micros(9));
        assert_eq!(s.hist("fault.hist").unwrap().count, 2);
        assert_eq!(s.hists().count(), 1);
        s.reset();
        assert!(s.hist("fault.hist").is_none());
        // Ids survive reset, exactly like counters and tallies.
        s.record_id(id, Dur::from_micros(1));
        assert_eq!(s.hist("fault.hist").unwrap().count, 1);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::default().quantile(0.5), Dur::ZERO);
    }

    #[test]
    fn zero_counters_are_not_reported() {
        let mut s = Stats::new();
        let _ = s.counter_id("interned.but.untouched");
        s.bump("touched");
        let keys: Vec<_> = s.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["touched"]);
    }
}
