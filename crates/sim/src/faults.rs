//! Deterministic fault injection for the simulated interconnect.
//!
//! The paper's machine — and the original simulation substrate — delivers
//! every message exactly once, in order. Real interconnects do not, and the
//! ASVM protocol's asynchronous state machines with pending-request records
//! exist precisely so that nothing blocks when the network misbehaves. This
//! module supplies the misbehaviour: a [`FaultPlan`] describes, per link,
//! how often messages are dropped, duplicated or delayed, plus scripted
//! whole-node blackout windows. The plan is carried by
//! [`crate::MachineConfig`] and sampled by the transport layer on every
//! exposed send.
//!
//! # Determinism
//!
//! All fault sampling draws from a dedicated generator seeded **only** by
//! [`FaultPlan::seed`], kept separate from the world's main RNG. Because
//! events are totally ordered, the sequence of fault decisions is a pure
//! function of `(plan, workload)`: two runs with the same plan and seed
//! take identical drops, duplicates and delays — bit for bit. And because
//! the disabled plan ([`FaultPlan::none`]) never draws at all, enabling the
//! machinery with a `none` plan perturbs nothing: baseline runs stay
//! byte-identical.
//!
//! See `docs/RELIABILITY.md` for the full reliability model.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::mesh::NodeId;
use crate::time::{Dur, Time};

/// Per-link fault rates. Probabilities are in parts per million so integer
/// configs stay exact (`10_000` ppm = 1 %).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkFaults {
    /// Probability a message is silently dropped, in ppm.
    pub drop_ppm: u32,
    /// Probability a message is duplicated (the copy arrives later, inside
    /// the reorder window), in ppm.
    pub dup_ppm: u32,
    /// Probability a message is delayed by extra wire time, in ppm.
    pub delay_ppm: u32,
    /// Bound on injected extra delay — the *reorder window*: a delayed (or
    /// duplicated) message arrives up to this much later than it would
    /// have, letting younger messages overtake it.
    pub delay_max: Dur,
}

impl LinkFaults {
    /// A perfectly reliable link (all rates zero).
    pub const NONE: LinkFaults = LinkFaults {
        drop_ppm: 0,
        dup_ppm: 0,
        delay_ppm: 0,
        delay_max: Dur::ZERO,
    };

    /// True if this profile can never produce a fault.
    pub fn is_none(&self) -> bool {
        self.drop_ppm == 0 && self.dup_ppm == 0 && self.delay_ppm == 0
    }
}

/// A scripted whole-node outage: while `now` is in `[from, until)`, every
/// message the node sends or should receive is dropped on the wire.
#[derive(Clone, Copy, Debug)]
pub struct Blackout {
    /// The node that goes dark.
    pub node: NodeId,
    /// Start of the outage (inclusive).
    pub from: Time,
    /// End of the outage (exclusive).
    pub until: Time,
}

impl Blackout {
    /// True if `node` is dark at `now` under this entry.
    fn covers(&self, node: NodeId, now: Time) -> bool {
        self.node == node && self.from <= now && now < self.until
    }
}

/// A seeded, deterministic description of how the interconnect misbehaves.
///
/// Build one with [`FaultPlan::none`] (the default: perfectly reliable)
/// or seed one and layer faults on with the builder methods:
///
/// ```
/// use svmsim::{Dur, FaultPlan, NodeId, Time};
///
/// // 1 % loss everywhere, 0.2 % duplication, delays of up to 2 ms on
/// // 0.5 % of messages, and node 3 dark for the first 10 ms.
/// let plan = FaultPlan::seeded(1996)
///     .with_drop_ppm(10_000)
///     .with_dup_ppm(2_000)
///     .with_delay(5_000, Dur::from_millis(2))
///     .with_blackout(NodeId(3), Time::ZERO, Time::from_nanos(10_000_000));
/// assert!(plan.is_active());
/// assert!(!FaultPlan::none().is_active());
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed of the dedicated fault RNG. Fault decisions depend on this and
    /// nothing else (the world's main RNG is untouched).
    pub seed: u64,
    /// Fault profile applied to every link without an override.
    pub default_link: LinkFaults,
    /// Per-link overrides, keyed by `(src, dst)`. First match wins.
    pub links: Vec<(NodeId, NodeId, LinkFaults)>,
    /// Scripted node outages.
    pub blackouts: Vec<Blackout>,
}

impl Default for LinkFaults {
    fn default() -> LinkFaults {
        LinkFaults::NONE
    }
}

/// What the fault layer decided for one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver normally.
    Deliver,
    /// Drop it: the sender pays for the send, nothing arrives.
    Drop(FaultCause),
    /// Deliver it twice: the original on time, a copy `extra` later.
    Duplicate {
        /// Extra delay of the duplicate copy.
        extra: Dur,
    },
    /// Deliver once, `extra` later than normal.
    Delay {
        /// The injected extra delay.
        extra: Dur,
    },
}

/// Why a message was dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultCause {
    /// Random per-link loss.
    Loss,
    /// The source or destination node is inside a blackout window.
    Blackout,
}

impl FaultPlan {
    /// The reliable plan: no faults, never draws from the fault RNG.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// An active-but-empty plan with the given RNG seed; layer faults on
    /// with the `with_*` builders.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the default per-link drop probability (ppm).
    pub fn with_drop_ppm(mut self, ppm: u32) -> FaultPlan {
        self.default_link.drop_ppm = ppm;
        self
    }

    /// Sets the default per-link duplication probability (ppm). Duplicates
    /// arrive within the reorder window (`delay_max`, or 1 ms if unset).
    pub fn with_dup_ppm(mut self, ppm: u32) -> FaultPlan {
        self.default_link.dup_ppm = ppm;
        self
    }

    /// Sets the default per-link delay probability (ppm) and the reorder
    /// window bounding the injected delay.
    pub fn with_delay(mut self, ppm: u32, window: Dur) -> FaultPlan {
        self.default_link.delay_ppm = ppm;
        self.default_link.delay_max = window;
        self
    }

    /// Overrides the fault profile of the directed link `src → dst`.
    pub fn with_link(mut self, src: NodeId, dst: NodeId, faults: LinkFaults) -> FaultPlan {
        self.links.push((src, dst, faults));
        self
    }

    /// Scripts a blackout of `node` over `[from, until)`.
    pub fn with_blackout(mut self, node: NodeId, from: Time, until: Time) -> FaultPlan {
        self.blackouts.push(Blackout { node, from, until });
        self
    }

    /// True if this plan can produce any fault at all. Inactive plans are
    /// never sampled, which is what keeps faults-off runs byte-identical
    /// to the pre-fault-layer baseline.
    pub fn is_active(&self) -> bool {
        !self.default_link.is_none()
            || self.links.iter().any(|(_, _, f)| !f.is_none())
            || !self.blackouts.is_empty()
    }

    /// The fault profile of the directed link `src → dst`.
    fn link(&self, src: NodeId, dst: NodeId) -> LinkFaults {
        self.links
            .iter()
            .find(|(s, d, _)| *s == src && *d == dst)
            .map(|(_, _, f)| *f)
            .unwrap_or(self.default_link)
    }

    /// Samples the fate of one message on `src → dst` at `now`.
    ///
    /// Sampling order is fixed (blackout, drop, duplicate, delay) and draws
    /// lazily; since the event order is deterministic, so is the decision
    /// stream. Callers must not invoke this on inactive plans (the
    /// transport checks [`FaultPlan::is_active`] first) so that reliable
    /// runs never consume fault randomness.
    pub fn decide(&self, now: Time, src: NodeId, dst: NodeId, rng: &mut SmallRng) -> FaultDecision {
        if self
            .blackouts
            .iter()
            .any(|b| b.covers(src, now) || b.covers(dst, now))
        {
            return FaultDecision::Drop(FaultCause::Blackout);
        }
        let link = self.link(src, dst);
        if link.drop_ppm > 0 && rng.gen_range(0u32..1_000_000) < link.drop_ppm {
            return FaultDecision::Drop(FaultCause::Loss);
        }
        if link.dup_ppm > 0 && rng.gen_range(0u32..1_000_000) < link.dup_ppm {
            return FaultDecision::Duplicate {
                extra: sample_extra(link.delay_max, rng),
            };
        }
        if link.delay_ppm > 0 && rng.gen_range(0u32..1_000_000) < link.delay_ppm {
            return FaultDecision::Delay {
                extra: sample_extra(link.delay_max, rng),
            };
        }
        FaultDecision::Deliver
    }
}

/// Uniform extra delay in `(0, window]`; defaults to a 1 ms window when the
/// plan sets none (duplication without an explicit delay bound).
fn sample_extra(window: Dur, rng: &mut SmallRng) -> Dur {
    let w = if window.is_zero() {
        Dur::from_millis(1)
    } else {
        window
    };
    Dur::from_nanos(rng.gen_range(0..w.as_nanos()) + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn none_is_inactive() {
        assert!(!FaultPlan::none().is_active());
        assert!(FaultPlan::seeded(7).with_drop_ppm(1).is_active());
        assert!(FaultPlan::seeded(7)
            .with_blackout(NodeId(0), Time::ZERO, Time::MAX)
            .is_active());
        assert!(!FaultPlan::seeded(7).is_active());
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::seeded(42)
            .with_drop_ppm(100_000)
            .with_dup_ppm(100_000)
            .with_delay(100_000, Dur::from_millis(1));
        let sample = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..256)
                .map(|i| {
                    plan.decide(
                        Time::from_nanos(i),
                        NodeId((i % 3) as u16),
                        NodeId(((i + 1) % 3) as u16),
                        &mut rng,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(plan.seed), sample(plan.seed));
    }

    #[test]
    fn total_loss_always_drops() {
        let plan = FaultPlan::seeded(1).with_drop_ppm(1_000_000);
        let mut rng = SmallRng::seed_from_u64(plan.seed);
        for i in 0..64 {
            assert_eq!(
                plan.decide(Time::from_nanos(i), NodeId(0), NodeId(1), &mut rng),
                FaultDecision::Drop(FaultCause::Loss)
            );
        }
    }

    #[test]
    fn blackout_covers_both_directions_and_expires() {
        let plan = FaultPlan::seeded(1).with_blackout(
            NodeId(2),
            Time::from_nanos(100),
            Time::from_nanos(200),
        );
        let mut rng = SmallRng::seed_from_u64(plan.seed);
        let dark = Time::from_nanos(150);
        let lit = Time::from_nanos(200); // window end is exclusive
        assert_eq!(
            plan.decide(dark, NodeId(2), NodeId(0), &mut rng),
            FaultDecision::Drop(FaultCause::Blackout)
        );
        assert_eq!(
            plan.decide(dark, NodeId(0), NodeId(2), &mut rng),
            FaultDecision::Drop(FaultCause::Blackout)
        );
        assert_eq!(
            plan.decide(lit, NodeId(0), NodeId(2), &mut rng),
            FaultDecision::Deliver
        );
        assert_eq!(
            plan.decide(dark, NodeId(0), NodeId(1), &mut rng),
            FaultDecision::Deliver
        );
    }

    #[test]
    fn link_override_beats_default() {
        let plan = FaultPlan::seeded(1).with_link(
            NodeId(0),
            NodeId(1),
            LinkFaults {
                drop_ppm: 1_000_000,
                ..LinkFaults::NONE
            },
        );
        let mut rng = SmallRng::seed_from_u64(plan.seed);
        assert_eq!(
            plan.decide(Time::ZERO, NodeId(0), NodeId(1), &mut rng),
            FaultDecision::Drop(FaultCause::Loss)
        );
        // The reverse direction keeps the (reliable) default profile.
        assert_eq!(
            plan.decide(Time::ZERO, NodeId(1), NodeId(0), &mut rng),
            FaultDecision::Deliver
        );
    }

    #[test]
    fn delay_samples_stay_inside_the_window() {
        let plan = FaultPlan::seeded(9).with_delay(1_000_000, Dur::from_micros(500));
        let mut rng = SmallRng::seed_from_u64(plan.seed);
        for i in 0..128 {
            match plan.decide(Time::from_nanos(i), NodeId(0), NodeId(1), &mut rng) {
                FaultDecision::Delay { extra } => {
                    assert!(!extra.is_zero() && extra <= Dur::from_micros(500));
                }
                d => panic!("expected Delay, got {d:?}"),
            }
        }
    }
}
