//! `svmsim` — deterministic discrete-event substrate for the ASVM
//! reproduction.
//!
//! This crate models the *machine* of Zeisset, Tritscher and Mairandres'
//! USENIX '96 paper — an Intel Paragon multicomputer: nodes with a compute
//! processor and a dedicated message processor, a 2-D wormhole-routed mesh,
//! per-node memory budgets, and disks on dedicated I/O nodes. Everything
//! above it (transports, the Mach VM model, XMM, ASVM) lives in the other
//! crates of this workspace and runs on top of the [`world::World`] event
//! loop defined here.
//!
//! Design notes:
//!
//! * **Determinism.** Events are totally ordered by `(time, sequence)`; all
//!   randomness flows from one seeded generator; protocol state uses ordered
//!   maps. Two runs with equal inputs produce equal outputs, bit for bit.
//! * **Occupancy, not just latency.** Processors and disks are serial
//!   resources with "free at" watermarks. Queueing behind a busy centralized
//!   manager is what produces the paper's scalability cliffs, so it is
//!   modelled rather than approximated.
//! * **One calibration surface.** Every timing constant sits in
//!   [`machine::CostModel`].
//!
//! # Examples
//!
//! A two-node machine exchanging one message:
//!
//! ```
//! use svmsim::{Ctx, Dur, Machine, MachineConfig, MsgCosts, NodeBehavior, NodeId, Time, World};
//!
//! struct Echo(u32);
//! impl NodeBehavior<u32> for Echo {
//!     fn on_message(&mut self, _ctx: &mut Ctx<'_, u32>, msg: u32) {
//!         self.0 += msg;
//!     }
//! }
//!
//! let machine = Machine::new(MachineConfig::paragon(2));
//! let mut world = World::new(machine, 1, |_, _| Echo(0));
//! world.post(Time::ZERO, NodeId(1), 41);
//! world.run_to_quiescence(10).unwrap();
//! assert_eq!(world.node(NodeId(1)).0, 41);
//! ```

pub mod disk;
pub mod faults;
pub mod machine;
pub mod mesh;
pub mod queue;
pub mod stats;
pub mod time;
pub mod trace;
pub mod world;

pub use disk::{Disk, DiskOp};
pub use faults::{Blackout, FaultCause, FaultDecision, FaultPlan, LinkFaults};
pub use machine::{CostModel, Machine, MachineConfig, NodeKind};
pub use mesh::{Mesh, NodeId};
pub use queue::EventQueue;
pub use stats::{HistId, Histogram, StatId, Stats, Tally, TallyId};
pub use time::{Dur, Time};
pub use trace::TraceRing;
pub use world::{CpuState, Ctx, EventBudgetExceeded, MsgCosts, NodeBehavior, World};
