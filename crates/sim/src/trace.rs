//! Bounded ring buffer for structured event traces.
//!
//! Protocol debugging wants the *last N* events leading up to a failure,
//! not an unbounded log: coherence property tests run hundreds of thousands
//! of events, and only the tail around the violation matters. A
//! [`TraceRing`] keeps a fixed-capacity window, counts what it dropped, and
//! costs one `Vec` slot write per recorded event — cheap enough to leave
//! compiled in and gate at runtime (the cluster layer only records when a
//! ring was installed).

/// Fixed-capacity ring buffer of trace events.
#[derive(Clone, Debug)]
pub struct TraceRing<T> {
    buf: Vec<T>,
    cap: usize,
    /// Index of the oldest retained event within `buf`.
    head: usize,
    /// Events pushed but no longer retained.
    dropped: u64,
}

impl<T> TraceRing<T> {
    /// A ring retaining the most recent `cap` events (`cap >= 1`).
    pub fn new(cap: usize) -> TraceRing<T> {
        let cap = cap.max(1);
        TraceRing {
            buf: Vec::with_capacity(cap.min(1024)),
            cap,
            head: 0,
            dropped: 0,
        }
    }

    /// Records one event, evicting the oldest if the ring is full.
    pub fn push(&mut self, ev: T) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted to make room (total pushes = `len() + dropped()`).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_most_recent_events() {
        let mut r = TraceRing::new(3);
        for i in 0..7 {
            r.push(i);
        }
        assert_eq!(r.iter().copied().collect::<Vec<i32>>(), vec![4, 5, 6]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 4);
    }

    #[test]
    fn partial_fill_preserves_order() {
        let mut r = TraceRing::new(8);
        r.push("a");
        r.push("b");
        assert_eq!(r.iter().copied().collect::<Vec<&str>>(), vec!["a", "b"]);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = TraceRing::new(0);
        r.push(1);
        r.push(2);
        assert_eq!(r.iter().copied().collect::<Vec<i32>>(), vec![2]);
    }
}
