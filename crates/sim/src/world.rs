//! The simulation world: nodes, CPUs, disks and the event loop.
//!
//! Every node of the multicomputer owns two processors, mirroring a Paragon
//! GP node: a *compute* processor that runs application code (and the fault
//! entry/exit path of its kernel), and a *message* processor that runs the
//! transport stacks and the distributed-memory protocol handlers. Each is a
//! serial resource tracked by a "free at" watermark; work queues behind it.
//! This occupancy model is what makes the centralized-manager bottlenecks of
//! the paper's baseline *emerge* from the simulation instead of being
//! hard-coded.
//!
//! The world is generic over the node behaviour `N` and the message type
//! `M`, so the protocol crates stay independent of each other; the `cluster`
//! crate instantiates it with its unified message enum.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::disk::{Disk, DiskOp};
use crate::faults::FaultDecision;
use crate::machine::Machine;
use crate::mesh::NodeId;
use crate::queue::EventQueue;
use crate::stats::{StatId, Stats};
use crate::time::{Dur, Time};

/// Pre-interned ids for the counters bumped on every message / disk access,
/// so the hot path never does a string lookup (see `stats` module docs).
#[derive(Clone, Copy, Debug)]
struct HotIds {
    net_messages: StatId,
    net_bytes: StatId,
    disk_reads: StatId,
    disk_writes: StatId,
}

impl HotIds {
    fn intern(stats: &mut Stats) -> HotIds {
        HotIds {
            net_messages: stats.counter_id("net.messages"),
            net_bytes: stats.counter_id("net.bytes"),
            disk_reads: stats.counter_id("disk.reads"),
            disk_writes: stats.counter_id("disk.writes"),
        }
    }
}

/// How a node reacts to delivered messages.
pub trait NodeBehavior<M> {
    /// Handles one message. `ctx.now()` is the instant at which the message
    /// has been fully received (receive-side CPU already charged).
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, msg: M);
}

/// Cost envelope of one network message, as computed by a transport.
#[derive(Clone, Copy, Debug)]
pub struct MsgCosts {
    /// Sender message-processor occupancy.
    pub send_cpu: Dur,
    /// Receiver message-processor occupancy (charged before delivery).
    pub recv_cpu: Dur,
    /// Total bytes on the wire (header + payload).
    pub bytes: u32,
    /// Additional in-flight latency beyond wire time, occupying neither
    /// host (a NIC pipeline's per-message floor). Zero for the classic
    /// Paragon transports.
    pub extra_latency: Dur,
}

/// Per-node processor occupancy watermarks.
#[derive(Clone, Copy, Debug, Default)]
pub struct CpuState {
    /// The message processor is busy until this instant.
    pub msg_free: Time,
    /// The compute processor is busy until this instant.
    pub compute_free: Time,
}

struct Envelope<M> {
    dst: NodeId,
    recv_cpu: Dur,
    msg: M,
}

/// One scheduled occurrence: a message delivery, or a wake-up for the
/// head of a node's blocked-receive queue (see [`World::step`]).
enum Event<M> {
    Deliver(Envelope<M>),
    /// Re-examine this node's message processor: if it has freed up,
    /// deliver the oldest blocked message; otherwise go back to sleep
    /// until the new `msg_free`. One such event stands in for the whole
    /// backlog, however deep.
    Wake(NodeId),
}

/// Error returned when the event loop exceeds its safety budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventBudgetExceeded {
    /// The budget that was exhausted.
    pub budget: u64,
}

impl std::fmt::Display for EventBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simulation exceeded event budget of {}", self.budget)
    }
}

impl std::error::Error for EventBudgetExceeded {}

/// The complete simulation state.
pub struct World<N, M> {
    now: Time,
    machine: Machine,
    nodes: Vec<N>,
    cpus: Vec<CpuState>,
    disks: Vec<Disk>,
    queue: EventQueue<Event<M>>,
    /// Per-node FIFO of messages that arrived while the node's message
    /// processor was busy, paired with (at most) one `Event::Wake` per
    /// node in the event queue. See [`World::step`].
    blocked: Vec<VecDeque<Envelope<M>>>,
    stats: Stats,
    hot: HotIds,
    rng: SmallRng,
    /// Dedicated generator for fault-injection decisions, seeded only by
    /// the [`crate::FaultPlan`]. Kept apart from `rng` so enabling the
    /// fault layer with an inactive plan perturbs nothing.
    fault_rng: SmallRng,
    events_processed: u64,
    wall_busy: std::time::Duration,
}

impl<N: NodeBehavior<M>, M> World<N, M> {
    /// Builds a world, constructing one node via `factory` per machine node.
    pub fn new(
        machine: Machine,
        seed: u64,
        mut factory: impl FnMut(NodeId, &Machine) -> N,
    ) -> Self {
        let n = machine.config.total_nodes() as usize;
        let nodes = machine
            .mesh
            .node_ids()
            .map(|id| factory(id, &machine))
            .collect();
        let mut stats = Stats::new();
        let hot = HotIds::intern(&mut stats);
        World {
            now: Time::ZERO,
            nodes,
            cpus: vec![CpuState::default(); n],
            disks: (0..n).map(|_| Disk::new()).collect(),
            // Pending events scale with node count (in-flight messages plus
            // timers); pre-reserve so steady state never reallocates. The
            // megascale sweep's queue-depth gauge puts the observed peak
            // near 2·n across 128-1024 nodes (blocked receives park in
            // per-node FIFOs, not the heap), so 4·n leaves 2× headroom;
            // `queue.grow` in BENCH_megascale.json confirms zero
            // steady-state reallocations at this size.
            queue: EventQueue::with_capacity((n * 4).max(1024)),
            blocked: (0..n).map(|_| VecDeque::new()).collect(),
            stats,
            hot,
            rng: SmallRng::seed_from_u64(seed),
            fault_rng: SmallRng::seed_from_u64(machine.config.faults.seed),
            machine,
            events_processed: 0,
            wall_busy: std::time::Duration::ZERO,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The machine description.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Immutable access to a node (for inspection in tests and harnesses).
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node (for setup).
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// Gathered statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Mutable statistics (harnesses reset between phases).
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// The disk attached to `node` (meaningful for I/O nodes only).
    pub fn disk(&self, node: NodeId) -> &Disk {
        &self.disks[node.index()]
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Wall-clock time spent inside [`World::run_to_quiescence`] and
    /// [`World::run_until`] so far (accumulated across calls).
    pub fn wall_time(&self) -> std::time::Duration {
        self.wall_busy
    }

    /// High-water mark of simultaneously pending events — capacity-planning
    /// telemetry for the event queue's pre-reservation heuristic.
    pub fn queue_peak(&self) -> usize {
        self.queue.peak_len()
    }

    /// Pushes that outgrew the queue's pre-reserved capacity (each implies
    /// a reallocation). Zero means the sizing heuristic held for this run.
    pub fn queue_grow_events(&self) -> u64 {
        self.queue.grow_events()
    }

    /// Events processed per wall-clock second of event-loop execution —
    /// the simulator's throughput, surfaced in the benchmark trajectory
    /// output. Zero until the loop has run.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall_busy.as_secs_f64();
        if secs > 0.0 {
            self.events_processed as f64 / secs
        } else {
            0.0
        }
    }

    /// Schedules `msg` for delivery to `dst` at absolute time `at` with no
    /// CPU charge — used to seed the simulation from outside the event loop.
    pub fn post(&mut self, at: Time, dst: NodeId, msg: M) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(
            at,
            Event::Deliver(Envelope {
                dst,
                recv_cpu: Dur::ZERO,
                msg,
            }),
        );
    }

    /// Runs a single event. Returns `false` when the queue is empty.
    ///
    /// Messages that reach a node whose message processor is busy park in
    /// the node's `blocked` FIFO; a single `Event::Wake` per node stands
    /// in for the whole backlog and re-checks `msg_free` each time it
    /// fires, delivering exactly one waiter per free instant. Naively
    /// retrying every waiter at `msg_free` costs O(k²) heap churn at k-way
    /// fan-in — ruinous at kilo-node scale — while service order and
    /// delivery times are the same either way: strict arrival order,
    /// yielding to any send CPU the in-between handlers charge.
    pub fn step(&mut self) -> bool {
        let Some((t, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(t >= self.now, "event queue violated time order");
        self.now = t;
        let (env, from_wake) = match ev {
            Event::Wake(who) => {
                let d = who.index();
                let free = self.cpus[d].msg_free;
                if free > t {
                    // The processor picked up other work (a handler's send,
                    // or a same-instant delivery) after this wake was
                    // scheduled: sleep until it frees again.
                    self.queue.push(free, Event::Wake(who));
                    return true;
                }
                let env = self.blocked[d]
                    .pop_front()
                    .expect("wake fired for a node with no blocked messages");
                (env, true)
            }
            Event::Deliver(env) => {
                let d = env.dst.index();
                if !env.recv_cpu.is_zero() && self.cpus[d].msg_free > t {
                    // Busy receiver: park in arrival order. The first
                    // waiter brings the wake event with it; later ones
                    // just queue behind.
                    if self.blocked[d].is_empty() {
                        self.queue.push(self.cpus[d].msg_free, Event::Wake(env.dst));
                    }
                    self.blocked[d].push_back(env);
                    return true;
                }
                (env, false)
            }
        };
        let me = env.dst;
        let dst = me.index();
        let mut handler_now = t;
        if !env.recv_cpu.is_zero() {
            self.cpus[dst].msg_free = t + env.recv_cpu;
            handler_now = t + env.recv_cpu;
        }
        self.events_processed += 1;
        let node = &mut self.nodes[dst];
        let mut ctx = Ctx {
            now: handler_now,
            me,
            machine: &self.machine,
            cpus: &mut self.cpus,
            disks: &mut self.disks,
            queue: &mut self.queue,
            stats: &mut self.stats,
            hot: self.hot,
            rng: &mut self.rng,
            fault_rng: &mut self.fault_rng,
        };
        node.on_message(&mut ctx, env.msg);
        // A delivery consumed off the blocked FIFO consumed its wake too;
        // re-arm for the next waiter once the handler has finished charging
        // this node's processor.
        if from_wake && !self.blocked[dst].is_empty() {
            let at = self.cpus[dst].msg_free;
            self.queue.push(at, Event::Wake(me));
        }
        true
    }

    /// Runs until the queue drains or `budget` events have been processed.
    ///
    /// The budget is a livelock guard: protocol bugs that ping-pong messages
    /// forever fail fast instead of hanging the test suite.
    pub fn run_to_quiescence(&mut self, budget: u64) -> Result<Time, EventBudgetExceeded> {
        let started = std::time::Instant::now();
        let limit = self.events_processed + budget;
        let result = loop {
            if !self.step() {
                break Ok(self.now);
            }
            if self.events_processed > limit {
                break Err(EventBudgetExceeded { budget });
            }
        };
        self.wall_busy += started.elapsed();
        result
    }

    /// Runs until simulated time reaches `until` or the queue drains.
    pub fn run_until(&mut self, until: Time) -> Time {
        let started = std::time::Instant::now();
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            self.step();
        }
        self.wall_busy += started.elapsed();
        self.now = self.now.max(until);
        self.now
    }

    /// True if no events are pending.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }
}

/// Handler-side view of the world: everything a node may touch while
/// processing a message.
pub struct Ctx<'a, M> {
    now: Time,
    me: NodeId,
    machine: &'a Machine,
    cpus: &'a mut [CpuState],
    disks: &'a mut [Disk],
    queue: &'a mut EventQueue<Event<M>>,
    stats: &'a mut Stats,
    hot: HotIds,
    rng: &'a mut SmallRng,
    fault_rng: &'a mut SmallRng,
}

impl<'a, M> Ctx<'a, M> {
    /// Current instant (advances as CPU is charged).
    pub fn now(&self) -> Time {
        self.now
    }

    /// The node this handler runs on.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The machine description.
    pub fn machine(&self) -> &Machine {
        self.machine
    }

    /// Statistics sink.
    pub fn stats(&mut self) -> &mut Stats {
        self.stats
    }

    /// Deterministic random source.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Charges `d` of message-processor time on this node and advances the
    /// local clock past it.
    pub fn charge_msg_cpu(&mut self, d: Dur) {
        let cpu = &mut self.cpus[self.me.index()];
        let done = cpu.msg_free.max(self.now) + d;
        cpu.msg_free = done;
        self.now = done;
    }

    /// Charges `d` of compute-processor time on this node; returns the
    /// completion instant (the local clock does *not* advance — compute work
    /// proceeds concurrently with message handling, as on the real machine's
    /// two processors).
    pub fn charge_compute(&mut self, d: Dur) -> Time {
        let cpu = &mut self.cpus[self.me.index()];
        let done = cpu.compute_free.max(self.now) + d;
        cpu.compute_free = done;
        done
    }

    /// Instant at which this node's compute processor becomes free.
    pub fn compute_free(&self) -> Time {
        self.cpus[self.me.index()].compute_free
    }

    /// Sends `msg` to `dst` with the given transport cost envelope.
    ///
    /// Sender CPU is charged now; the message arrives after the wire time
    /// and pays `recv_cpu` at the destination before delivery. Sending to
    /// the local node is allowed (loopback with no wire time) — used by the
    /// protocol layers for uniform self-delivery.
    pub fn send(&mut self, dst: NodeId, costs: MsgCosts, msg: M) {
        let cpu = &mut self.cpus[self.me.index()];
        let departure = cpu.msg_free.max(self.now) + costs.send_cpu;
        cpu.msg_free = departure;
        let arrival =
            departure + self.machine.wire_time(self.me, dst, costs.bytes) + costs.extra_latency;
        self.stats.bump_id(self.hot.net_messages);
        self.stats.add_id(self.hot.net_bytes, costs.bytes as u64);
        self.queue.push(
            arrival,
            Event::Deliver(Envelope {
                dst,
                recv_cpu: costs.recv_cpu,
                msg,
            }),
        );
    }

    /// Samples the fault layer's verdict for one message to `dst` at the
    /// current instant, drawing from the dedicated fault RNG.
    ///
    /// Only the transport's exposed send path calls this, and only when the
    /// machine's [`crate::FaultPlan`] is active — inactive plans never
    /// consume fault randomness, keeping reliable runs byte-identical.
    pub fn fault_decision(&mut self, dst: NodeId) -> FaultDecision {
        self.machine
            .config
            .faults
            .decide(self.now, self.me, dst, self.fault_rng)
    }

    /// Charges the sender side of `costs` and counts the wire statistics
    /// without delivering anything — a message dropped in transit: it left
    /// the NIC and consumed link bandwidth, but no one receives it.
    pub fn charge_send_only(&mut self, costs: MsgCosts) {
        let cpu = &mut self.cpus[self.me.index()];
        cpu.msg_free = cpu.msg_free.max(self.now) + costs.send_cpu;
        self.stats.bump_id(self.hot.net_messages);
        self.stats.add_id(self.hot.net_bytes, costs.bytes as u64);
    }

    /// Like [`Ctx::send`], but the message arrives `extra` later than its
    /// natural arrival time — injected delay (and the late copy of a
    /// duplicated message). Within that window, younger messages on the
    /// same link can overtake it.
    pub fn send_delayed(&mut self, dst: NodeId, costs: MsgCosts, extra: Dur, msg: M) {
        let cpu = &mut self.cpus[self.me.index()];
        let departure = cpu.msg_free.max(self.now) + costs.send_cpu;
        cpu.msg_free = departure;
        let arrival = departure
            + self.machine.wire_time(self.me, dst, costs.bytes)
            + costs.extra_latency
            + extra;
        self.stats.bump_id(self.hot.net_messages);
        self.stats.add_id(self.hot.net_bytes, costs.bytes as u64);
        self.queue.push(
            arrival,
            Event::Deliver(Envelope {
                dst,
                recv_cpu: costs.recv_cpu,
                msg,
            }),
        );
    }

    /// Like [`Ctx::send`], but the message may not hit the wire before
    /// `earliest` (used by pagers whose reply waits for a disk access).
    ///
    /// The send CPU is charged now — the processor is free to do other
    /// work while the buffered message waits for its gate; only the wire
    /// departure is delayed.
    pub fn send_after(&mut self, earliest: Time, dst: NodeId, costs: MsgCosts, msg: M) {
        let cpu = &mut self.cpus[self.me.index()];
        let departure = cpu.msg_free.max(self.now) + costs.send_cpu;
        cpu.msg_free = departure;
        let arrival = departure.max(earliest)
            + self.machine.wire_time(self.me, dst, costs.bytes)
            + costs.extra_latency;
        self.stats.bump_id(self.hot.net_messages);
        self.stats.add_id(self.hot.net_bytes, costs.bytes as u64);
        self.queue.push(
            arrival,
            Event::Deliver(Envelope {
                dst,
                recv_cpu: costs.recv_cpu,
                msg,
            }),
        );
    }

    /// Schedules `msg` for local delivery at absolute time `at` with no CPU
    /// charge (timers, task resumptions, deferred work).
    pub fn post_self(&mut self, at: Time, msg: M) {
        debug_assert!(at >= self.now || at >= Time::ZERO);
        self.queue.push(
            at.max(self.now),
            Event::Deliver(Envelope {
                dst: self.me,
                recv_cpu: Dur::ZERO,
                msg,
            }),
        );
    }

    /// Schedules `msg` for delivery to `dst` at absolute time `at` with no
    /// transport cost. Used for intra-kernel hand-offs whose cost has
    /// already been charged by the caller.
    pub fn post(&mut self, at: Time, dst: NodeId, msg: M) {
        self.queue.push(
            at.max(self.now),
            Event::Deliver(Envelope {
                dst,
                recv_cpu: Dur::ZERO,
                msg,
            }),
        );
    }

    /// Queues a disk access on this node's drive; returns completion time.
    ///
    /// Only I/O nodes have meaningful disks; accessing a compute node's disk
    /// is a logic error caught in debug builds.
    pub fn disk_access(&mut self, op: DiskOp, pos: u64, len: u32) -> Time {
        debug_assert!(
            matches!(self.machine.kind(self.me), crate::machine::NodeKind::Io),
            "disk access on non-I/O node {}",
            self.me
        );
        let id = match op {
            DiskOp::Read => self.hot.disk_reads,
            DiskOp::Write => self.hot.disk_writes,
        };
        self.stats.bump_id(id);
        self.disks[self.me.index()].access(&self.machine.config.cost, self.now, op, pos, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    /// Echo node: replies to every `Ping(k)` with `Pong(k)` to the sender.
    enum Msg {
        Ping { from: NodeId, k: u32 },
        Pong { k: u32 },
        Tick,
    }

    #[derive(Default)]
    struct Echo {
        pongs: Vec<u32>,
        ticks: u32,
    }

    fn costs() -> MsgCosts {
        MsgCosts {
            send_cpu: Dur::from_micros(10),
            recv_cpu: Dur::from_micros(20),
            bytes: 64,
            extra_latency: Dur::ZERO,
        }
    }

    impl NodeBehavior<Msg> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, msg: Msg) {
            match msg {
                Msg::Ping { from, k } => {
                    ctx.send(from, costs(), Msg::Pong { k });
                }
                Msg::Pong { k } => self.pongs.push(k),
                Msg::Tick => self.ticks += 1,
            }
        }
    }

    fn world(n: u16) -> World<Echo, Msg> {
        World::new(Machine::new(MachineConfig::paragon(n)), 7, |_, _| {
            Echo::default()
        })
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut w = world(2);
        w.post(
            Time::ZERO,
            NodeId(1),
            Msg::Ping {
                from: NodeId(0),
                k: 42,
            },
        );
        let end = w.run_to_quiescence(100).unwrap();
        assert_eq!(w.node(NodeId(0)).pongs, vec![42]);
        // The reply is one real message: its arrival pays send CPU plus
        // wire time, at least 15 us.
        assert!(end.since(Time::ZERO) >= Dur::from_micros(15));
        assert_eq!(w.stats().counter("net.messages"), 1);
    }

    #[test]
    fn receiver_cpu_serializes_messages() {
        let mut w = world(3);
        // Two pings arrive at node 2 at the same time; replies must be
        // serialized by node 2's message processor.
        w.post(
            Time::ZERO,
            NodeId(2),
            Msg::Ping {
                from: NodeId(0),
                k: 1,
            },
        );
        w.post(
            Time::ZERO,
            NodeId(2),
            Msg::Ping {
                from: NodeId(0),
                k: 2,
            },
        );
        w.run_to_quiescence(100).unwrap();
        assert_eq!(w.node(NodeId(0)).pongs, vec![1, 2]);
    }

    #[test]
    fn busy_cpu_delays_delivery() {
        // A message arriving while the receiver is busy waits for the CPU.
        let mut w = world(2);
        w.post(
            Time::ZERO,
            NodeId(0),
            Msg::Ping {
                from: NodeId(1),
                k: 1,
            },
        );
        w.post(
            Time::ZERO,
            NodeId(0),
            Msg::Ping {
                from: NodeId(1),
                k: 2,
            },
        );
        // Ping handlers charge send CPU; the second send departs after the
        // first. Both pongs go to node 1 whose recv CPU serializes them.
        w.run_to_quiescence(100).unwrap();
        assert_eq!(w.node(NodeId(1)).pongs.len(), 2);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut w = world(2);
        w.post(Time::from_nanos(1_000_000), NodeId(0), Msg::Tick);
        w.post(Time::from_nanos(2_000_000), NodeId(0), Msg::Tick);
        let t = w.run_until(Time::from_nanos(1_500_000));
        assert_eq!(w.node(NodeId(0)).ticks, 1);
        assert_eq!(t, Time::from_nanos(1_500_000));
        assert!(!w.is_quiescent());
    }

    #[test]
    fn event_budget_detects_livelock() {
        // Two nodes ping each other forever.
        struct Loopy;
        impl NodeBehavior<Msg> for Loopy {
            fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, msg: Msg) {
                if let Msg::Ping { from, k } = msg {
                    let me = ctx.me();
                    ctx.send(from, costs(), Msg::Ping { from: me, k });
                }
            }
        }
        let mut w: World<Loopy, Msg> =
            World::new(Machine::new(MachineConfig::paragon(2)), 1, |_, _| Loopy);
        w.post(
            Time::ZERO,
            NodeId(1),
            Msg::Ping {
                from: NodeId(0),
                k: 0,
            },
        );
        assert!(w.run_to_quiescence(50).is_err());
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let mut w = world(4);
            for i in 0..4u16 {
                w.post(
                    Time::ZERO,
                    NodeId(i % 4),
                    Msg::Ping {
                        from: NodeId((i + 1) % 4),
                        k: i as u32,
                    },
                );
            }
            w.run_to_quiescence(1000).unwrap();
            (
                w.now(),
                w.events_processed(),
                w.stats().counter("net.bytes"),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn charge_compute_is_concurrent_with_messages() {
        let mut w = world(1);
        w.post(Time::ZERO, NodeId(0), Msg::Tick);
        // Drive one handler manually to inspect ctx behaviour.
        struct Probe;
        impl NodeBehavior<Msg> for Probe {
            fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _msg: Msg) {
                let t0 = ctx.now();
                let done = ctx.charge_compute(Dur::from_millis(1));
                assert_eq!(done, t0 + Dur::from_millis(1));
                // The local clock did not advance.
                assert_eq!(ctx.now(), t0);
                ctx.charge_msg_cpu(Dur::from_micros(5));
                assert_eq!(ctx.now(), t0 + Dur::from_micros(5));
            }
        }
        let mut w2: World<Probe, Msg> =
            World::new(Machine::new(MachineConfig::paragon(1)), 1, |_, _| Probe);
        w2.post(Time::ZERO, NodeId(0), Msg::Tick);
        w2.run_to_quiescence(10).unwrap();
        drop(w);
    }
}

#[cfg(test)]
mod send_after_tests {
    use super::*;
    use crate::machine::MachineConfig;

    enum M {
        Go,
        Note(u64),
    }

    struct Sender {
        notes: Vec<u64>,
    }

    impl NodeBehavior<M> for Sender {
        fn on_message(&mut self, ctx: &mut Ctx<'_, M>, msg: M) {
            match msg {
                M::Go => {
                    let costs = MsgCosts {
                        send_cpu: Dur::from_micros(10),
                        recv_cpu: Dur::from_micros(10),
                        bytes: 32,
                        extra_latency: Dur::ZERO,
                    };
                    // Departure gated far in the future.
                    ctx.send_after(Time::from_nanos(5_000_000), NodeId(1), costs, M::Note(1));
                    // Ungated message sent afterwards still arrives first.
                    ctx.send(NodeId(1), costs, M::Note(2));
                }
                M::Note(n) => self.notes.push(n),
            }
        }
    }

    #[test]
    fn send_after_delays_departure_not_order_of_issue() {
        let mut w: World<Sender, M> =
            World::new(Machine::new(MachineConfig::paragon(2)), 3, |_, _| Sender {
                notes: vec![],
            });
        w.post(Time::ZERO, NodeId(0), M::Go);
        w.run_to_quiescence(100).unwrap();
        assert_eq!(w.node(NodeId(1)).notes, vec![2, 1]);
        assert!(w.now() >= Time::from_nanos(5_000_000));
    }

    #[test]
    fn loopback_send_delivers_to_self() {
        struct Loop {
            got: bool,
        }
        impl NodeBehavior<M> for Loop {
            fn on_message(&mut self, ctx: &mut Ctx<'_, M>, msg: M) {
                match msg {
                    M::Go => {
                        let me = ctx.me();
                        let costs = MsgCosts {
                            send_cpu: Dur::from_micros(1),
                            recv_cpu: Dur::from_micros(1),
                            bytes: 8,
                            extra_latency: Dur::ZERO,
                        };
                        ctx.send(me, costs, M::Note(9));
                    }
                    M::Note(_) => self.got = true,
                }
            }
        }
        let mut w: World<Loop, M> =
            World::new(Machine::new(MachineConfig::paragon(1)), 3, |_, _| Loop {
                got: false,
            });
        w.post(Time::ZERO, NodeId(0), M::Go);
        w.run_to_quiescence(10).unwrap();
        assert!(w.node(NodeId(0)).got);
    }
}
