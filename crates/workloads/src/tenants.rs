//! Multi-tenant Zipf workload: the millions-of-users shape.
//!
//! Every other workload in this crate is one task group on one memory
//! object. A host in the paper's target deployment looks nothing like
//! that: *thousands* of memory objects with heavily skewed popularity,
//! tasks arriving and departing mid-run, and no single access pattern —
//! some objects are read-mostly fan-out, others write-heavy migratory.
//! No static forwarding/coalescing configuration wins across that mix,
//! which is exactly the case for per-object strategy selection
//! ([`asvm::policy`]).
//!
//! The generator is fully seeded and deterministic:
//!
//! * **objects** — a pool of [`TenantsSpec::objects`] memory objects,
//!   homed round-robin across the nodes, each assigned a *class*
//!   (read-mostly or write-heavy) by the setup RNG;
//! * **popularity** — each task draws a working set of
//!   [`TenantsSpec::objs_per_task`] distinct objects from a [`Zipf`]
//!   distribution over the pool, so popular objects are mapped (and
//!   contended) on many nodes while tail objects often live on one;
//! * **arrival/departure** — tasks start in [`TenantsSpec::waves`]
//!   arrival waves spaced [`TenantsSpec::wave_gap_ms`] apart
//!   ([`cluster::Ssi::spawn_at`]) and depart when their op budget is
//!   spent, so membership of the popular objects' sharing sets shifts
//!   mid-run;
//! * **accesses** — each op picks a working-set object (Zipf over slots,
//!   most popular first) and read vs write from the object's class
//!   ratio. The classes differ in *shape*, not just mix: read-mostly
//!   objects are scanned sequentially (the analytics/file-scan tenant,
//!   where readahead turns k faults into k/(1+depth)), while write-heavy
//!   objects hammer Zipf-hot pages (the OLTP tenant, where prefetched
//!   neighbours are invalidated before anyone reads them).
//!
//! [`TenantsSpec::phase_flip`] is the honest counter-case knob: it
//! inverts every object's read/write mix each `phase_flip` ops, and a
//! flip period shorter than the policy's `window × hysteresis` makes an
//! adaptive run churn (`asvm.policy.switch` climbs, latency does not
//! improve) — see the `tenants` bench.

use asvm::{AccelBase, AsvmConfig, PolicyMode};
use cluster::{ManagerKind, Program, Ssi, Step, TaskEnv};
use machvm::{Access, Inherit};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use svmsim::{Dur, MachineConfig, NodeId, Time};
use transport::Transport;

/// A seeded Zipf sampler over `0..n` by inverse CDF: rank `i` carries
/// weight `1 / (i + 1)^skew`. Skew 0 degenerates to uniform; skew around
/// 1 is the classic web-popularity curve. Sampling is a binary search
/// over the precomputed cumulative weights — deterministic for a given
/// `(n, skew, rng)` (see the determinism tests).
#[derive(Clone, Debug)]
pub struct Zipf {
    cum: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler over `0..n` with exponent `skew`.
    pub fn new(n: usize, skew: f64) -> Zipf {
        assert!(n > 0, "Zipf over an empty domain");
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(skew);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        Zipf { cum }
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        // Uniform in [0, 1): 53 random bits over 2^53 (the vendored rand
        // has no float sampling).
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.cum.partition_point(|&c| c < u).min(self.cum.len() - 1)
    }
}

/// Parameters of the multi-tenant workload.
#[derive(Clone, Debug)]
pub struct TenantsSpec {
    /// Compute nodes.
    pub nodes: u16,
    /// Memory objects in the pool (the generator handles thousands; the
    /// committed bench keeps cells smaller for CI wall-clock).
    pub objects: u32,
    /// Pages per object.
    pub pages_per_object: u32,
    /// Zipf exponent of object popularity (0 = uniform).
    pub object_skew: f64,
    /// Zipf exponent of page popularity within a *write-heavy* object
    /// (read-mostly objects are scanned sequentially instead).
    pub page_skew: f64,
    /// Total tasks over the whole run.
    pub tasks: u32,
    /// Arrival waves the tasks are split into.
    pub waves: u32,
    /// Gap between arrival waves, in simulated milliseconds.
    pub wave_gap_ms: f64,
    /// Distinct objects in each task's working set.
    pub objs_per_task: u32,
    /// Accesses each task performs before departing.
    pub ops_per_task: u32,
    /// Percent of objects assigned the read-mostly class.
    pub read_mostly_pct: u32,
    /// Read percentage of a read-mostly object's accesses.
    pub read_mostly_read_pct: u32,
    /// Read percentage of a write-heavy object's accesses.
    pub write_heavy_read_pct: u32,
    /// Modeled compute per access, in microseconds.
    pub think_us: f64,
    /// Invert every object's read/write mix each `phase_flip` ops per
    /// task (0 disables): the adaptation-churn counter-case.
    pub phase_flip: u32,
    /// Master seed for classes, working sets, and access streams.
    pub seed: u64,
}

impl Default for TenantsSpec {
    fn default() -> TenantsSpec {
        TenantsSpec {
            nodes: 8,
            objects: 96,
            pages_per_object: 16,
            object_skew: 0.9,
            page_skew: 1.1,
            tasks: 24,
            waves: 3,
            wave_gap_ms: 40.0,
            objs_per_task: 6,
            ops_per_task: 400,
            read_mostly_pct: 50,
            read_mostly_read_pct: 98,
            write_heavy_read_pct: 30,
            think_us: 200.0,
            phase_flip: 0,
            seed: 1996,
        }
    }
}

/// Outcome of a tenants run.
#[derive(Clone, Copy, Debug)]
pub struct TenantsOutcome {
    /// Page faults completed.
    pub faults: u64,
    /// Mean fault latency, milliseconds.
    pub mean_fault_ms: f64,
    /// Total fault stall (faults × mean latency), milliseconds — the
    /// page-wait cost the tenant mix actually pays. Mean latency alone
    /// misreads readahead: averting a scan's cheap faults *raises* the
    /// mean of the remaining ones even as total waiting falls.
    pub stall_ms: f64,
    /// Simulated wall-clock, seconds.
    pub elapsed_s: f64,
    /// Simulator events processed.
    pub events: u64,
    /// Logical ASVM protocol messages (Σ `asvm.msg.*`).
    pub asvm_msgs: u64,
    /// Physical ASVM wire frames (logical minus coalesce-merged).
    pub asvm_frames: u64,
    /// Subframes that rode an earlier message's frame.
    pub coalesce_merged: u64,
    /// Policy windows evaluated (`asvm.policy.observe`).
    pub policy_observe: u64,
    /// Policy mode switches applied (`asvm.policy.switch`).
    pub policy_switch: u64,
    /// Object replicas (per node, per object) ending the run in
    /// Dynamic / Static / Global mode.
    pub modes: [u64; 3],
}

impl TenantsOutcome {
    /// ASVM wire frames per resolved fault.
    pub fn frames_per_fault(&self) -> f64 {
        if self.faults == 0 {
            return 0.0;
        }
        self.asvm_frames as f64 / self.faults as f64
    }
}

struct TenantProgram {
    pages: u32,
    /// Read percentage per working-set slot (popularity order).
    slot_read_pct: Vec<u32>,
    /// Per slot: true = read-mostly class, accessed as a sequential scan;
    /// false = write-heavy class, accessed at Zipf-hot pages.
    slot_scan: Vec<bool>,
    /// Per-slot scan cursor (wraps at the object end).
    cursors: Vec<u32>,
    ops: u32,
    done: u32,
    slot_zipf: Zipf,
    page_zipf: Zipf,
    phase_flip: u32,
    rng: StdRng,
    think: Dur,
    think_pending: bool,
}

impl Program for TenantProgram {
    fn step(&mut self, _env: &mut TaskEnv) -> Step {
        if self.think_pending {
            self.think_pending = false;
            return Step::Compute(self.think);
        }
        if self.done >= self.ops {
            return Step::Done;
        }
        self.done += 1;
        let slot = self.slot_zipf.sample(&mut self.rng);
        let page = if self.slot_scan[slot] {
            let p = self.cursors[slot];
            self.cursors[slot] = (p + 1) % self.pages;
            p
        } else {
            self.page_zipf.sample(&mut self.rng) as u32
        };
        let va = slot as u64 * self.pages as u64 + page as u64;
        let mut read_pct = self.slot_read_pct[slot];
        if self.phase_flip > 0 && (self.done / self.phase_flip) % 2 == 1 {
            read_pct = 100 - read_pct;
        }
        if self.think > Dur::ZERO {
            self.think_pending = true;
        }
        if self.rng.gen_range(0..100) < read_pct {
            Step::Read { va_page: va }
        } else {
            Step::Write {
                va_page: va,
                value: self.done as u64,
            }
        }
    }
}

/// Runs the tenants workload under `cfg` on `transport` and reports
/// protocol statistics. With `oracle` set, every object is registered
/// with its class-ideal configuration through
/// [`cluster::Ssi::set_object_config`] — dynamic + coalescing for
/// read-mostly objects, the fixed distributed manager for write-heavy
/// ones — the upper bound the online policy tries to reach without being
/// told the classes.
pub fn run_tenants(
    cfg: AsvmConfig,
    transport: Transport,
    spec: &TenantsSpec,
    oracle: bool,
) -> TenantsOutcome {
    assert!(spec.objects > 0 && spec.tasks > 0 && spec.objs_per_task > 0);
    assert!(
        spec.objs_per_task <= spec.objects,
        "working set larger than the object pool"
    );
    let mut setup = StdRng::seed_from_u64(spec.seed);
    let mut ssi = Ssi::with_machine(
        MachineConfig::paragon(spec.nodes),
        ManagerKind::Asvm(cfg),
        spec.seed,
    );
    ssi.set_asvm_transport(transport);

    // The object pool: homes round-robin, classes drawn by the setup RNG.
    let mut mobjs = Vec::with_capacity(spec.objects as usize);
    let mut read_mostly = Vec::with_capacity(spec.objects as usize);
    for i in 0..spec.objects {
        let home = NodeId(i as u16 % spec.nodes);
        let mobj = ssi.create_object(home, spec.pages_per_object, false);
        let rm = setup.gen_range(0..100) < spec.read_mostly_pct;
        if oracle {
            let mut c = cfg;
            c.policy.enabled = false;
            let mode = if rm {
                PolicyMode::Dynamic
            } else {
                PolicyMode::Static
            };
            // Same rewrite an online switch would perform: Dynamic keeps
            // the base accelerants, Static strips them.
            mode.apply(&mut c, AccelBase::of(&cfg));
            ssi.set_object_config(mobj, c);
        }
        mobjs.push((mobj, home));
        read_mostly.push(rm);
    }

    // Tasks: working sets drawn Zipf over the pool, mapped at setup time;
    // arrival staggered by wave, departure after the op budget.
    let object_zipf = Zipf::new(spec.objects as usize, spec.object_skew);
    let mut spawns = Vec::with_capacity(spec.tasks as usize);
    for t in 0..spec.tasks {
        let node = NodeId(t as u16 % spec.nodes);
        let task = ssi.alloc_task();
        let mut set: Vec<usize> = Vec::with_capacity(spec.objs_per_task as usize);
        while set.len() < spec.objs_per_task as usize {
            let o = object_zipf.sample(&mut setup);
            if !set.contains(&o) {
                set.push(o);
            }
        }
        // Popularity order: lower rank = heavier weight in the slot Zipf.
        set.sort_unstable();
        let mut slot_read_pct = Vec::with_capacity(set.len());
        let mut slot_scan = Vec::with_capacity(set.len());
        for (slot, &obj) in set.iter().enumerate() {
            let (mobj, home) = mobjs[obj];
            ssi.map_shared(
                task,
                node,
                slot as u64 * spec.pages_per_object as u64,
                mobj,
                home,
                spec.pages_per_object,
                Access::Write,
                Inherit::Share,
            );
            slot_read_pct.push(if read_mostly[obj] {
                spec.read_mostly_read_pct
            } else {
                spec.write_heavy_read_pct
            });
            slot_scan.push(read_mostly[obj]);
        }
        let wave = t * spec.waves / spec.tasks;
        let at = Time::ZERO + Dur::from_millis_f64(wave as f64 * spec.wave_gap_ms);
        spawns.push((at, node, task, slot_read_pct, slot_scan));
    }
    ssi.finalize();
    for (at, node, task, slot_read_pct, slot_scan) in spawns {
        let cursors = vec![0; slot_scan.len()];
        let program = TenantProgram {
            pages: spec.pages_per_object,
            slot_read_pct,
            slot_scan,
            cursors,
            ops: spec.ops_per_task,
            done: 0,
            slot_zipf: Zipf::new(spec.objs_per_task as usize, spec.object_skew),
            page_zipf: Zipf::new(spec.pages_per_object as usize, spec.page_skew),
            phase_flip: spec.phase_flip,
            rng: StdRng::seed_from_u64(spec.seed ^ ((task.0 as u64) << 32)),
            think: Dur::from_micros_f64(spec.think_us),
            think_pending: false,
        };
        ssi.spawn_at(at, node, task, Box::new(program));
    }
    ssi.run(u64::MAX / 2).expect("tenants run quiesces");
    assert!(ssi.all_done(), "tenants tasks all depart");

    let s = ssi.stats();
    // Healthy run: the recovery layer must stay dark (same gate the
    // pattern runners assert). One exception: `asvm.recover.stale_grant`
    // also absorbs the benign same-node upgrade race — task A's read
    // request is in flight when task B write-faults the same page, the
    // write request supersedes the pending read, and the late read grant
    // is dropped as a duplicate. Single-task-per-node patterns can never
    // produce it; a multi-task tenants node legitimately can.
    for (key, v) in s.counters() {
        if key == "asvm.recover.stale_grant" {
            continue;
        }
        assert!(
            !(key.starts_with("asvm.recover.") || key.starts_with("cluster.suspect.")),
            "healthy tenants run bumped recovery counter {key} = {v}"
        );
    }
    let faults = s.tally("fault.ms");
    let asvm_msgs: u64 = s
        .counters()
        .filter(|(k, _)| k.starts_with("asvm.msg."))
        .map(|(_, v)| v)
        .sum();
    let merged = s.counter("asvm.coalesce.merged");
    let mut modes = [0u64; 3];
    for n in 0..spec.nodes {
        if let Some(a) = ssi.node(NodeId(n)).asvm() {
            for o in a.objects() {
                let m = match PolicyMode::of(&o.cfg) {
                    PolicyMode::Dynamic => 0,
                    PolicyMode::Static => 1,
                    PolicyMode::Global => 2,
                };
                modes[m] += 1;
            }
        }
    }
    TenantsOutcome {
        faults: faults.map(|t| t.count).unwrap_or(0),
        mean_fault_ms: faults.map(|t| t.mean().as_millis_f64()).unwrap_or(0.0),
        stall_ms: faults
            .map(|t| t.count as f64 * t.mean().as_millis_f64())
            .unwrap_or(0.0),
        elapsed_s: ssi.world.now().as_secs_f64(),
        events: ssi.world.events_processed(),
        asvm_msgs,
        asvm_frames: asvm_msgs - merged,
        coalesce_merged: merged,
        policy_observe: s.counter("asvm.policy.observe"),
        policy_switch: s.counter("asvm.policy.switch"),
        modes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_deterministic_under_a_fixed_seed() {
        let z = Zipf::new(1000, 0.9);
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..256).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7), "same seed, same sequence");
        assert_ne!(draw(7), draw(8), "different seed, different sequence");
    }

    #[test]
    fn zipf_skew_concentrates_mass_on_low_ranks() {
        let mut rng = StdRng::seed_from_u64(42);
        let z = Zipf::new(100, 1.1);
        let head = (0..2000).filter(|_| z.sample(&mut rng) < 10).count() as f64;
        assert!(
            head / 2000.0 > 0.5,
            "top 10% of ranks got {head} of 2000 draws"
        );
        // Skew 0 is uniform: the head takes roughly its fair share.
        let u = Zipf::new(100, 0.0);
        let head = (0..2000).filter(|_| u.sample(&mut rng) < 10).count() as f64;
        assert!(head / 2000.0 < 0.2, "uniform head share: {head} of 2000");
    }

    #[test]
    fn zipf_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let z = Zipf::new(4, 0.8);
        let mut seen = [false; 4];
        for _ in 0..500 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all ranks reachable: {seen:?}");
    }

    fn small_spec() -> TenantsSpec {
        TenantsSpec {
            nodes: 4,
            objects: 12,
            pages_per_object: 4,
            tasks: 8,
            waves: 2,
            wave_gap_ms: 10.0,
            objs_per_task: 3,
            ops_per_task: 60,
            think_us: 100.0,
            ..TenantsSpec::default()
        }
    }

    #[test]
    fn tenants_run_is_deterministic() {
        let spec = small_spec();
        let a = run_tenants(AsvmConfig::default(), Transport::STS, &spec, false);
        let b = run_tenants(AsvmConfig::default(), Transport::STS, &spec, false);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.asvm_msgs, b.asvm_msgs);
        assert_eq!(a.events, b.events);
        assert_eq!(a.elapsed_s, b.elapsed_s);
        let mut other = spec;
        other.seed = 7;
        let c = run_tenants(AsvmConfig::default(), Transport::STS, &other, false);
        assert_ne!(
            (a.faults, a.asvm_msgs, a.events),
            (c.faults, c.asvm_msgs, c.events),
            "a different seed must reshape the workload"
        );
    }

    #[test]
    fn static_configs_never_touch_the_policy_counters() {
        let spec = small_spec();
        let out = run_tenants(AsvmConfig::default(), Transport::STS, &spec, false);
        assert_eq!(out.policy_observe, 0);
        assert_eq!(out.policy_switch, 0);
        assert_eq!(out.modes[1] + out.modes[2], 0, "all replicas stay Dynamic");
    }

    #[test]
    fn adaptive_run_observes_and_switches() {
        let mut spec = small_spec();
        spec.ops_per_task = 150;
        spec.read_mostly_pct = 40;
        let mut cfg = AsvmConfig::default().adaptive();
        cfg.policy.window = 24;
        let out = run_tenants(cfg, Transport::STS, &spec, false);
        assert!(out.policy_observe > 0, "windows must close");
        assert!(out.policy_switch > 0, "mixed classes must force switches");
        assert!(
            out.modes[1] + out.modes[2] > 0,
            "some replicas leave Dynamic: {:?}",
            out.modes
        );
    }

    #[test]
    fn oracle_assigns_class_ideal_configs() {
        let spec = small_spec();
        let out = run_tenants(AsvmConfig::default(), Transport::STS, &spec, true);
        assert!(
            out.modes[0] > 0 && out.modes[1] > 0,
            "both classes appear: {:?}",
            out.modes
        );
        assert_eq!(out.policy_switch, 0, "the oracle never adapts at runtime");
    }
}
