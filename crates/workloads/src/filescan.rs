//! Memory-mapped file transfer-rate workload (Table 2, Figures 12/13).
//!
//! Mirrors the paper's measurement: the OSF/1 server is bypassed; each node
//! maps the file and reads/writes memory directly. The *write* test has all
//! nodes write disjoint sections of a fresh 4 MB file (asynchronous writes:
//! nothing waits for writeback, so the bound is how fast the pager supplies
//! zero-filled pages). The *read* test has all nodes read the whole 4 MB
//! populated file in parallel (the bound is the pager's supply rate — or,
//! under ASVM, the peer caches once the first copy is in memory).

use cluster::{ManagerKind, Program, Ssi, Step, TaskEnv};
use machvm::{Access, Inherit};
use svmsim::{Dur, NodeId};

/// Scan direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScanDir {
    /// All nodes read the whole file.
    Read,
    /// Each node writes its own section.
    Write,
}

/// One file-scan experiment.
#[derive(Clone, Copy, Debug)]
pub struct FileScanSpec {
    /// Which manager runs the cluster.
    pub kind: ManagerKind,
    /// Number of compute nodes taking part.
    pub nodes: u16,
    /// File size in pages (4 MB = 512 pages in the paper).
    pub file_pages: u32,
    /// Read or write scan.
    pub dir: ScanDir,
}

/// Result of a file-scan run.
#[derive(Clone, Copy, Debug)]
pub struct FileScanResult {
    /// Mean effective transfer rate seen by each node, MB/s.
    pub rate_mb_s: f64,
    /// Elapsed simulated time of the slowest node.
    pub elapsed: Dur,
    /// Total pager-supplied pages.
    pub pages_supplied: u64,
    /// Simulator events processed by the run (parallel-sweep accounting).
    pub events: u64,
}

struct Scanner {
    first: u32,
    count: u32,
    next: u32,
    write: bool,
}

impl Program for Scanner {
    fn step(&mut self, _env: &mut TaskEnv) -> Step {
        if self.next < self.count {
            let p = (self.first + self.next) as u64;
            self.next += 1;
            if self.write {
                Step::Write {
                    va_page: p,
                    value: 0xF11E_0000 + p,
                }
            } else {
                Step::Read { va_page: p }
            }
        } else {
            Step::Done
        }
    }
}

/// Runs one file-scan experiment.
pub fn file_scan(spec: FileScanSpec) -> FileScanResult {
    let mut ssi = Ssi::new(spec.nodes, spec.kind, 23);
    let home = NodeId(0);
    let populated = spec.dir == ScanDir::Read;
    let mobj = ssi.create_object(home, spec.file_pages, populated);

    let mut tasks = Vec::new();
    for n in 0..spec.nodes {
        let t = ssi.alloc_task();
        ssi.map_shared(
            t,
            NodeId(n),
            0,
            mobj,
            home,
            spec.file_pages,
            Access::Write,
            Inherit::Share,
        );
        tasks.push(t);
    }
    ssi.finalize();

    let per_node = spec.file_pages / spec.nodes as u32;
    for (i, t) in tasks.iter().enumerate() {
        let (first, count) = match spec.dir {
            ScanDir::Read => (0, spec.file_pages),
            ScanDir::Write => (i as u32 * per_node, per_node),
        };
        ssi.spawn(
            NodeId(i as u16),
            *t,
            Box::new(Scanner {
                first,
                count,
                next: 0,
                write: spec.dir == ScanDir::Write,
            }),
        );
    }
    ssi.run(600_000_000).expect("file scan quiesces");
    assert!(ssi.all_done(), "all scanners must finish");

    // Verify read scans observed the file contents.
    if spec.dir == ScanDir::Read {
        for (i, t) in tasks.iter().enumerate() {
            let n = ssi.node(NodeId(i as u16));
            // Spot-check a few pages.
            for p in [0u32, spec.file_pages / 2, spec.file_pages - 1] {
                if let Some(v) = n.vm.peek_task_page(*t, p as u64) {
                    assert_eq!(
                        v,
                        pager::file_stamp(mobj, machvm::PageIdx(p)),
                        "node {i} read wrong contents for page {p}"
                    );
                }
            }
        }
    }

    // Per-node rate: section bytes / that node's elapsed time.
    let page_bytes = 8192u64;
    let mut rates = Vec::new();
    let mut slowest = Dur::ZERO;
    for (i, t) in tasks.iter().enumerate() {
        let rt = ssi
            .node(NodeId(i as u16))
            .task_runtime(*t)
            .expect("task finished");
        slowest = slowest.max(rt);
        let bytes = match spec.dir {
            ScanDir::Read => spec.file_pages as u64 * page_bytes,
            ScanDir::Write => per_node as u64 * page_bytes,
        };
        rates.push(bytes as f64 / rt.as_secs_f64() / (1024.0 * 1024.0));
    }
    let rate_mb_s = rates.iter().sum::<f64>() / rates.len() as f64;
    FileScanResult {
        rate_mb_s,
        elapsed: slowest,
        pages_supplied: ssi.stats().counter("disk.reads"),
        events: ssi.world.events_processed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asvm_single_node_write_rate_plausible() {
        let r = file_scan(FileScanSpec {
            kind: ManagerKind::asvm(),
            nodes: 1,
            file_pages: 128,
            dir: ScanDir::Write,
        });
        assert!(
            r.rate_mb_s > 0.5 && r.rate_mb_s < 20.0,
            "write rate {} MB/s implausible",
            r.rate_mb_s
        );
    }

    #[test]
    fn asvm_read_scales_better_than_xmm() {
        let nodes = 8;
        let pages = 128;
        let a = file_scan(FileScanSpec {
            kind: ManagerKind::asvm(),
            nodes,
            file_pages: pages,
            dir: ScanDir::Read,
        });
        let x = file_scan(FileScanSpec {
            kind: ManagerKind::xmm(),
            nodes,
            file_pages: pages,
            dir: ScanDir::Read,
        });
        assert!(
            a.rate_mb_s > 2.0 * x.rate_mb_s,
            "ASVM {} MB/s should beat XMM {} MB/s clearly",
            a.rate_mb_s,
            x.rate_mb_s
        );
    }
}
