//! Megascale instrumentation: per-node protocol-state gauges and event-
//! queue telemetry for the 128–1024-node bounded-memory sweeps.
//!
//! The paper's scaling argument is about *memory*, not just messages: an
//! ASVM node's protocol state (ownership records, copyset entries, hint
//! caches) is bounded by the pages it actually uses, while the XMM
//! baseline's centralized manager keeps a lock-state table of one entry
//! per page *per using node* — state that grows linearly with the cluster.
//! [`probe_state`] reads both through [`cluster::engine::CoherenceEngine::
//! state_bytes`] after a run, so the `megascale` benchmark can plot the
//! ASVM-flat vs. XMM-growing curve directly.
//!
//! The probe also reports the event queue's high-water mark and
//! reallocation count ([`svmsim`]'s `queue_peak` / `queue_grow_events`),
//! which is the telemetry behind the queue's pre-reservation heuristic.

use cluster::{ManagerKind, Program, Ssi, Step, TaskEnv};
use svmsim::{Dur, NodeId};

/// Protocol-state and event-queue gauges read from a finished run.
#[derive(Clone, Copy, Debug, Default)]
pub struct StateProbe {
    /// Largest per-node protocol state across the compute nodes, bytes.
    /// Under XMM this is the manager node; under ASVM it is whichever
    /// node owns the most pages.
    pub state_max_bytes: u64,
    /// Mean per-node protocol state across the compute nodes, bytes.
    pub state_mean_bytes: u64,
    /// Total protocol state across the compute nodes, bytes.
    pub state_total_bytes: u64,
    /// High-water mark of simultaneously pending events.
    pub queue_peak: u64,
    /// Event-queue pushes that outgrew the pre-reserved capacity (each
    /// implies a heap reallocation; zero means the sizing heuristic held).
    pub queue_grow: u64,
}

/// Reads the per-node state gauges and queue telemetry from `ssi`.
pub fn probe_state(ssi: &Ssi) -> StateProbe {
    let ids: Vec<NodeId> = ssi.world.machine().compute_nodes().collect();
    let mut max = 0u64;
    let mut total = 0u64;
    for id in &ids {
        let b = ssi.node(*id).engine.state_bytes();
        max = max.max(b);
        total += b;
    }
    StateProbe {
        state_max_bytes: max,
        state_mean_bytes: total / (ids.len() as u64).max(1),
        state_total_bytes: total,
        queue_peak: ssi.world.queue_peak() as u64,
        queue_grow: ssi.world.queue_grow_events(),
    }
}

/// A compute-only task: `left` short compute bursts, then done. No memory
/// traffic at all — every simulator event it generates is a bare resume on
/// the event hot path (pop, dispatch, reschedule), which is exactly what
/// the `eventloop` megascale cells measure.
struct SpinProgram {
    left: u32,
    burst: Dur,
}

impl Program for SpinProgram {
    fn step(&mut self, _env: &mut TaskEnv) -> Step {
        if self.left == 0 {
            return Step::Done;
        }
        self.left -= 1;
        Step::Compute(self.burst)
    }
}

/// Outcome of an event-loop saturation run.
#[derive(Clone, Copy, Debug)]
pub struct EventLoopOutcome {
    /// Simulator events processed.
    pub events: u64,
    /// Simulated seconds the run covered.
    pub elapsed_s: f64,
}

/// Runs one compute-only task per node, each burning `steps_per_node`
/// short compute bursts. The result is a pure event-hot-path workload at
/// cluster scale: `nodes × steps_per_node` resume events flowing through
/// a queue that holds about one pending event per node.
pub fn run_eventloop(
    kind: ManagerKind,
    nodes: u16,
    steps_per_node: u32,
    burst: Dur,
) -> (EventLoopOutcome, StateProbe) {
    let mut ssi = Ssi::new(nodes, kind, 7);
    let tasks: Vec<_> = (0..nodes).map(|_| ssi.alloc_task()).collect();
    ssi.finalize();
    for (i, t) in tasks.iter().enumerate() {
        ssi.spawn(
            NodeId(i as u16),
            *t,
            Box::new(SpinProgram {
                left: steps_per_node,
                burst,
            }),
        );
    }
    ssi.run(u64::MAX / 2).expect("event loop quiesces");
    let out = EventLoopOutcome {
        events: ssi.world.events_processed(),
        elapsed_s: ssi.world.now().as_secs_f64(),
    };
    let probe = probe_state(&ssi);
    (out, probe)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventloop_generates_one_event_per_burst() {
        let (out, probe) = run_eventloop(ManagerKind::asvm(), 8, 100, Dur::from_nanos(500));
        // One resume event per burst plus spawn/bookkeeping events.
        assert!(out.events >= 8 * 100, "events: {}", out.events);
        assert!(out.elapsed_s > 0.0);
        // Queue never holds much more than one pending event per node.
        assert!(probe.queue_peak >= 8);
    }

    #[test]
    fn probe_reads_nonzero_state_after_sharing() {
        use crate::patterns::{run_pattern_mega, Pattern};
        let (_, asvm) = run_pattern_mega(
            ManagerKind::asvm(),
            4,
            8,
            Pattern::ProducerConsumer { rounds: 2 },
        );
        let (_, xmm) = run_pattern_mega(
            ManagerKind::xmm(),
            4,
            8,
            Pattern::ProducerConsumer { rounds: 2 },
        );
        assert!(asvm.state_max_bytes > 0);
        assert!(xmm.state_max_bytes > 0);
        assert!(asvm.state_max_bytes >= asvm.state_mean_bytes);
        assert!(xmm.queue_peak > 0);
    }
}
