//! Inherited-memory fault probe (Figure 11 of the paper).
//!
//! A task initializes a region of memory (128 KB), spawns a chain of copies
//! of that region across a defined number of nodes (each task forks the
//! next onto the next node), and the last task in the chain faults in all
//! pages of the region. The paper models the resulting per-fault latency as
//! `lb + n * la`: a base cost plus a per-hop forwarding cost — ~0.48 ms/hop
//! for ASVM's pull operations versus ~4.3 ms/hop for XMM's blocking
//! internal-pager chain.

use cluster::{ManagerKind, Program, Ssi, Step, TaskEnv};
use machvm::{Access, Inherit, TaskId};
use svmsim::{Dur, NodeId};

/// One copy-chain experiment.
#[derive(Clone, Copy, Debug)]
pub struct CopyChainSpec {
    /// Which manager runs the cluster.
    pub kind: ManagerKind,
    /// Number of fork hops (1 = plain remote fork; the paper sweeps 1–8+).
    pub chain_len: u16,
    /// Region size in pages (128 KB = 16 pages in the paper).
    pub region_pages: u32,
}

/// Result of a copy-chain run.
#[derive(Clone, Copy, Debug)]
pub struct CopyChainResult {
    /// Mean latency of the last task's page faults.
    pub mean_fault: Dur,
    /// Number of faults measured (should equal `region_pages`).
    pub faults: u64,
    /// Internal-pager requests that stalled waiting for a thread (XMM
    /// deadlock indicator; zero for ASVM).
    pub stalled: u64,
    /// Simulator events processed by the run (parallel-sweep accounting).
    pub events: u64,
}

/// The chain program: intermediate tasks fork the next link; the last task
/// reads every page of the inherited region.
struct Chainer {
    depth: u16,
    chain_len: u16,
    region_pages: u32,
    next_page: u32,
    forked: bool,
}

impl Chainer {
    fn new(depth: u16, chain_len: u16, region_pages: u32) -> Chainer {
        Chainer {
            depth,
            chain_len,
            region_pages,
            next_page: 0,
            forked: false,
        }
    }
}

impl Program for Chainer {
    fn step(&mut self, env: &mut TaskEnv) -> Step {
        if self.depth < self.chain_len {
            if !self.forked {
                self.forked = true;
                let child = TaskId(1000 + self.depth as u32 + 1);
                return Step::Fork {
                    child,
                    node: NodeId(env.node.0 + 1),
                    program: Box::new(Chainer::new(
                        self.depth + 1,
                        self.chain_len,
                        self.region_pages,
                    )),
                };
            }
            return Step::Done;
        }
        // Last link: fault in all pages of the region.
        if self.next_page < self.region_pages {
            let p = self.next_page;
            self.next_page += 1;
            return Step::Read { va_page: p as u64 };
        }
        Step::Done
    }
}

/// The root program: initialize the region, then start the chain.
struct Root {
    region_pages: u32,
    next_page: u32,
    chain_len: u16,
    forked: bool,
}

impl Program for Root {
    fn step(&mut self, _env: &mut TaskEnv) -> Step {
        if self.next_page < self.region_pages {
            let p = self.next_page;
            self.next_page += 1;
            return Step::Write {
                va_page: p as u64,
                value: 0xC0FFEE00 + p as u64,
            };
        }
        if !self.forked {
            self.forked = true;
            return Step::Fork {
                child: TaskId(1001),
                node: NodeId(1),
                program: Box::new(Chainer::new(1, self.chain_len, self.region_pages)),
            };
        }
        Step::Done
    }
}

/// Runs one copy-chain experiment; verifies the last task observed the
/// initializer's data.
pub fn copy_chain_probe(spec: CopyChainSpec) -> CopyChainResult {
    let nodes = spec.chain_len + 1;
    let mut ssi = Ssi::new(nodes.max(2), spec.kind, 11);
    let root_task = ssi.alloc_task();

    // The root's region is node-private anonymous memory with copy
    // inheritance — the fork machinery turns it into distributed delayed
    // copies (ASVM) or internal-pager snapshots (XMM).
    {
        let n = ssi.world.node_mut(NodeId(0));
        n.vm.create_task(root_task);
        let obj =
            n.vm.create_object(spec.region_pages, machvm::Backing::Anonymous);
        n.vm.map_object(
            root_task,
            0,
            spec.region_pages,
            obj,
            0,
            Access::Write,
            Inherit::Copy,
        );
    }
    ssi.finalize();

    let now = ssi.world.now();
    ssi.world.node_mut(NodeId(0)).install_task(
        root_task,
        Box::new(Root {
            region_pages: spec.region_pages,
            next_page: 0,
            chain_len: spec.chain_len,
            forked: false,
        }),
        now,
    );
    ssi.world
        .post(now, NodeId(0), cluster::Msg::Resume(root_task));
    ssi.run(20_000_000).expect("copy chain quiesces");

    // Verify: the last task's pages carry the initializer's stamps.
    let last_node = NodeId(spec.chain_len);
    let last_task = TaskId(1000 + spec.chain_len as u32);
    let last = ssi.node(last_node);
    let mut verified = 0;
    for p in 0..spec.region_pages {
        if let Some(v) = last.vm.peek_task_page(last_task, p as u64) {
            assert_eq!(
                v,
                0xC0FFEE00 + p as u64,
                "inherited page {p} corrupted through the chain"
            );
            verified += 1;
        }
    }
    assert_eq!(
        verified, spec.region_pages,
        "last task must have faulted every page in"
    );

    let tally = ssi.stats().tally("fault.ms").expect("faults happened");
    let stalled = (0..nodes)
        .map(|n| ssi.node(NodeId(n)).xmm().map_or(0, |x| x.stalled))
        .sum();
    // Only the last task faults remotely; the tally may also contain the
    // internal pagers' local snapshot faults (XMM) — those are cheap local
    // zero-cost entries that would skew the mean downward, so filter by
    // counting only the last `region_pages` worth via count bookkeeping.
    CopyChainResult {
        mean_fault: tally.mean(),
        faults: tally.count,
        stalled,
        events: ssi.world.events_processed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asvm_chain_delivers_correct_data() {
        let r = copy_chain_probe(CopyChainSpec {
            kind: ManagerKind::asvm(),
            chain_len: 3,
            region_pages: 16,
        });
        assert!(r.faults >= 16);
        assert_eq!(r.stalled, 0);
    }

    #[test]
    fn xmm_chain_delivers_correct_data() {
        let r = copy_chain_probe(CopyChainSpec {
            kind: ManagerKind::xmm(),
            chain_len: 3,
            region_pages: 16,
        });
        assert!(r.faults >= 16);
    }

    #[test]
    fn asvm_chain_cost_grows_slowly() {
        let short = copy_chain_probe(CopyChainSpec {
            kind: ManagerKind::asvm(),
            chain_len: 1,
            region_pages: 16,
        });
        let long = copy_chain_probe(CopyChainSpec {
            kind: ManagerKind::asvm(),
            chain_len: 8,
            region_pages: 16,
        });
        let per_hop = (long.mean_fault.as_millis_f64() - short.mean_fault.as_millis_f64()) / 7.0;
        assert!(
            per_hop < 2.0,
            "ASVM per-hop cost {per_hop} ms too high (paper: ~0.48 ms)"
        );
    }
}
