//! EM3D: three-dimensional electromagnetic wave propagation (Table 3).
//!
//! The paper's version (originally Split-C with active messages \[9\],
//! rewritten for shared-memory communication) iterates over a bipartite
//! graph: E cells are updated from the H cells they are connected to, then
//! vice versa. The graph is generated randomly with a user-specified
//! percentage (20 %) of the 6 edges per cell leading to a cell on a
//! different processing node; each cell occupies 224 bytes.
//!
//! Cells are distributed in blocks; remote edges target cells near the
//! block boundaries of the ring neighbours (the `window` parameter),
//! reflecting the spatial locality of a 3-D field decomposition. Each half
//! iteration a node (a) read-faults the remote boundary pages it consumes,
//! (b) write-faults its own pages (invalidating the neighbours' read
//! copies), (c) charges the floating-point update cost, and (d) barriers —
//! so the coherency traffic pattern that separates ASVM from XMM is
//! reproduced exactly, page for page.

use std::collections::BTreeSet;

use cluster::{ManagerKind, Program, Ssi, Step, TaskEnv};
use machvm::{Access, Inherit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use svmsim::{Dur, MachineConfig, NodeId};

/// Bytes per cell (fixed by the paper).
pub const CELL_BYTES: u64 = 224;

/// Floating-point cost per edge evaluation, calibrated so that the
/// sequential 64 000-cell, 100-iteration run takes the paper's 43.6 s:
/// 43.6 s / (100 iters × 2 phases × 64 000 cells × 6 edges) ≈ 0.568 µs.
pub const EDGE_COST: Dur = Dur::from_nanos(568);

/// One EM3D experiment.
#[derive(Clone, Copy, Debug)]
pub struct Em3dSpec {
    /// Which manager runs the cluster.
    pub kind: ManagerKind,
    /// Number of compute nodes.
    pub nodes: u16,
    /// Total number of cells (E + H).
    pub cells: u64,
    /// Edges per cell (6 in the paper).
    pub edges_per_cell: u32,
    /// Fraction of edges leading to a remote cell (0.20 in the paper).
    pub pct_remote: f64,
    /// Computation iterations (100 in the paper).
    pub iterations: u32,
    /// Locality window, in cells, for remote edge targets at block
    /// boundaries.
    pub window: u32,
    /// Workload generation seed.
    pub seed: u64,
    /// Use 32 MB nodes (the paper's sequential baseline for 64 000 cells).
    pub mem_32mb: bool,
}

impl Em3dSpec {
    /// The paper's parameters for a given manager/node-count/problem size.
    pub fn paper(kind: ManagerKind, nodes: u16, cells: u64) -> Em3dSpec {
        Em3dSpec {
            kind,
            nodes,
            cells,
            edges_per_cell: 6,
            pct_remote: 0.20,
            iterations: 100,
            window: 200,
            seed: 1996,
            mem_32mb: nodes == 1,
        }
    }

    /// Cells per page (8 KB pages, 224-byte cells).
    pub fn cells_per_page(&self) -> u64 {
        8192 / CELL_BYTES
    }

    /// Total region size in pages.
    pub fn region_pages(&self) -> u32 {
        self.cells.div_ceil(self.cells_per_page()) as u32
    }

    /// True if the combined user memory of the nodes can hold the data set
    /// (the paper omits configurations where it cannot).
    pub fn feasible(&self) -> bool {
        let per_node = if self.mem_32mb {
            25u64 << 20
        } else {
            9u64 << 20
        };
        self.cells * CELL_BYTES <= per_node * self.nodes as u64
    }
}

/// Outcome of an EM3D run.
#[derive(Clone, Copy, Debug)]
pub struct Em3dOutcome {
    /// Execution time of the computation loop, seconds.
    pub elapsed_secs: f64,
    /// Page faults completed during the loop.
    pub faults: u64,
    /// Internode page transfers (ASVM internode paging activity).
    pub pageouts: u64,
    /// Simulator events processed by the run (parallel-sweep accounting).
    pub events: u64,
}

/// Per-node access pattern derived from the generated graph.
struct NodePattern {
    own_pages: Vec<u64>,
    remote_pages: Vec<u64>,
    compute_per_half: Dur,
}

fn build_patterns(spec: &Em3dSpec) -> Vec<NodePattern> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n = spec.nodes as u64;
    let cpn = spec.cells / n;
    let mut out = Vec::new();
    for i in 0..n {
        let first_cell = i * cpn;
        let last_cell = if i == n - 1 {
            spec.cells
        } else {
            (i + 1) * cpn
        };
        let own_cells = last_cell - first_cell;
        let own_pages: BTreeSet<u64> = (first_cell * CELL_BYTES / 8192
            ..=(last_cell.saturating_sub(1)) * CELL_BYTES / 8192)
            .collect();
        // Remote references: pct_remote of all edge endpoints, targeted at
        // ring neighbours' block boundaries within the window.
        let mut remote_pages = BTreeSet::new();
        if n > 1 {
            let remote_refs =
                (own_cells as f64 * spec.edges_per_cell as f64 * spec.pct_remote) as u64;
            for _ in 0..remote_refs {
                let dir: bool = rng.gen();
                let neighbour = if dir { (i + 1) % n } else { (i + n - 1) % n };
                let nb_first = neighbour * cpn;
                let nb_last = if neighbour == n - 1 {
                    spec.cells
                } else {
                    (neighbour + 1) * cpn
                };
                let nb_cells = nb_last - nb_first;
                let w = (spec.window as u64).min(nb_cells);
                // Bias toward the block edge facing us.
                let off = rng.gen_range(0..w.max(1));
                let cell = if dir {
                    nb_first + off
                } else {
                    nb_last - 1 - off
                };
                let page = cell * CELL_BYTES / 8192;
                if !own_pages.contains(&page) {
                    remote_pages.insert(page);
                }
            }
        }
        let compute =
            Dur::from_nanos(own_cells * spec.edges_per_cell as u64 * EDGE_COST.as_nanos());
        out.push(NodePattern {
            own_pages: own_pages.into_iter().collect(),
            remote_pages: remote_pages.into_iter().collect(),
            compute_per_half: compute,
        });
    }
    out
}

/// The per-node EM3D program.
struct Em3dProgram {
    own_pages: Vec<u64>,
    remote_pages: Vec<u64>,
    compute_per_half: Dur,
    iterations: u32,
    // progress
    half: u32,
    idx: usize,
    stage: Stage,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Stage {
    ReadRemote,
    WriteOwn,
    Compute,
    Barrier,
}

impl Program for Em3dProgram {
    fn step(&mut self, _env: &mut TaskEnv) -> Step {
        let total_halves = self.iterations * 2;
        loop {
            if self.half >= total_halves {
                return Step::Done;
            }
            match self.stage {
                Stage::ReadRemote => {
                    if self.idx < self.remote_pages.len() {
                        let p = self.remote_pages[self.idx];
                        self.idx += 1;
                        return Step::Touch {
                            va_page: p,
                            access: Access::Read,
                        };
                    }
                    self.stage = Stage::WriteOwn;
                    self.idx = 0;
                }
                Stage::WriteOwn => {
                    if self.idx < self.own_pages.len() {
                        let p = self.own_pages[self.idx];
                        self.idx += 1;
                        return Step::Touch {
                            va_page: p,
                            access: Access::Write,
                        };
                    }
                    self.stage = Stage::Compute;
                }
                Stage::Compute => {
                    self.stage = Stage::Barrier;
                    return Step::Compute(self.compute_per_half);
                }
                Stage::Barrier => {
                    let id = self.half;
                    self.half += 1;
                    self.idx = 0;
                    self.stage = Stage::ReadRemote;
                    return Step::Barrier(id);
                }
            }
        }
    }
}

/// Runs one EM3D experiment and returns the computation-loop time.
///
/// The initialization phase (building the graph, first-touch population of
/// the region) is excluded from the measurement, as in the paper.
pub fn em3d_run(spec: Em3dSpec) -> Em3dOutcome {
    em3d_run_probed(spec).0
}

/// [`em3d_run`] plus the megascale state probe: per-node protocol-state
/// bytes and event-queue telemetry read after the computation loop (see
/// [`crate::megascale`]).
pub fn em3d_run_probed(spec: Em3dSpec) -> (Em3dOutcome, crate::megascale::StateProbe) {
    assert!(spec.feasible(), "configuration does not fit in memory");
    let machine = if spec.mem_32mb {
        MachineConfig::paragon_32mb(spec.nodes)
    } else {
        MachineConfig::paragon(spec.nodes)
    };
    let mut ssi = Ssi::with_machine(machine, spec.kind, spec.seed);
    let home = NodeId(0);
    let pages = spec.region_pages();
    let mobj = ssi.create_object(home, pages, false);

    let patterns = build_patterns(&spec);
    let mut tasks = Vec::new();
    for i in 0..spec.nodes {
        let t = ssi.alloc_task();
        ssi.map_shared(
            t,
            NodeId(i),
            0,
            mobj,
            home,
            pages,
            Access::Write,
            Inherit::Share,
        );
        tasks.push(t);
    }
    ssi.finalize();
    ssi.set_barrier_parties(spec.nodes as u32);

    // Initialization phase: every node first-touches (writes) its own
    // block. Excluded from the measurement.
    for (i, pat) in patterns.iter().enumerate() {
        let steps: Vec<Step> = pat
            .own_pages
            .iter()
            .map(|p| Step::Touch {
                va_page: *p,
                access: Access::Write,
            })
            .chain(std::iter::once(Step::Done))
            .collect();
        ssi.spawn(
            NodeId(i as u16),
            tasks[i],
            Box::new(cluster::ScriptProgram::new(steps)),
        );
    }
    ssi.run(u64::MAX / 2).expect("init quiesces");

    // Computation loop (measured).
    ssi.world.stats_mut().reset();
    let start = ssi.world.now();
    for (i, pat) in patterns.into_iter().enumerate() {
        let t = tasks[i];
        let node = NodeId(i as u16);
        let now = ssi.world.now();
        ssi.world.node_mut(node).install_task(
            t,
            Box::new(Em3dProgram {
                own_pages: pat.own_pages,
                remote_pages: pat.remote_pages,
                compute_per_half: pat.compute_per_half,
                iterations: spec.iterations,
                half: 0,
                idx: 0,
                stage: Stage::ReadRemote,
            }),
            now,
        );
        ssi.world.post(now, node, cluster::Msg::Resume(t));
    }
    ssi.run(u64::MAX / 2).expect("computation quiesces");
    let elapsed = ssi.world.now().since(start);
    let out = Em3dOutcome {
        elapsed_secs: elapsed.as_secs_f64(),
        faults: ssi.stats().counter("faults.completed"),
        pageouts: ssi.stats().counter("pageouts"),
        events: ssi.world.events_processed(),
    };
    (out, crate::megascale::probe_state(&ssi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_run_matches_pure_compute() {
        let mut spec = Em3dSpec::paper(ManagerKind::asvm(), 1, 8000);
        spec.iterations = 10;
        let out = em3d_run(spec);
        // 8 000 cells × 6 edges × 2 × 10 iters × 0.568 µs ≈ 0.545 s.
        assert!(
            (out.elapsed_secs - 0.545).abs() < 0.1,
            "sequential time {} s",
            out.elapsed_secs
        );
    }

    #[test]
    fn parallel_asvm_speeds_up() {
        // Speedup needs a compute-dominated size, as in the paper (small
        // problems are overhead-bound and slow down on more nodes).
        let mut spec = Em3dSpec::paper(ManagerKind::asvm(), 4, 64_000);
        spec.iterations = 10;
        spec.mem_32mb = true;
        let par = em3d_run(spec);
        let mut seq = Em3dSpec::paper(ManagerKind::asvm(), 1, 64_000);
        seq.iterations = 10;
        let s = em3d_run(seq);
        assert!(
            par.elapsed_secs < s.elapsed_secs,
            "4 nodes ({}) must beat 1 node ({})",
            par.elapsed_secs,
            s.elapsed_secs
        );
    }

    #[test]
    fn feasibility_matches_paper_footnotes() {
        // 64 000 cells ≈ 14 MB: too much for one 16 MB node (9 MB user)…
        let seq16 = Em3dSpec {
            mem_32mb: false,
            ..Em3dSpec::paper(ManagerKind::asvm(), 1, 64_000)
        };
        assert!(!seq16.feasible());
        // …fine on a 32 MB node…
        assert!(Em3dSpec::paper(ManagerKind::asvm(), 1, 64_000).feasible());
        // …and 256 000 cells need ≥ 8 of the 16 MB nodes.
        assert!(!Em3dSpec::paper(ManagerKind::asvm(), 4, 256_000).feasible());
        assert!(Em3dSpec::paper(ManagerKind::asvm(), 8, 256_000).feasible());
    }
}

#[cfg(test)]
mod pressure_tests {
    use super::*;
    use svmsim::Dur;

    #[test]
    fn em3d_survives_memory_pressure() {
        // A problem that barely fits: internode paging and pageout engage
        // during the run, and the computation still completes with every
        // barrier round intact.
        let mut spec = Em3dSpec::paper(ManagerKind::asvm(), 2, 60_000);
        spec.iterations = 3;
        // 60 000 cells x 224 B = 13.4 MB over 2 x 9 MB: tight but feasible.
        assert!(spec.feasible());
        let out = em3d_run(spec);
        assert!(out.elapsed_secs > 0.0);
        assert!(out.faults > 0);
    }

    #[test]
    fn compute_cost_calibration_matches_paper() {
        // 0.568 us x 64 000 cells x 6 edges x 200 half-iterations = 43.6 s.
        let total = EDGE_COST.as_nanos() as f64 * 64_000.0 * 6.0 * 200.0 / 1e9;
        assert!((total - 43.6).abs() < 0.3, "calibration drifted: {total}");
        let _ = Dur::ZERO;
    }
}
