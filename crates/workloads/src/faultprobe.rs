//! Microbenchmark probes for basic page-fault latencies (Table 1 and
//! Figure 10 of the paper).
//!
//! The probe arranges the exact page state each Table 1 row describes and
//! then measures one fault in isolation:
//!
//! * an *initializer* node writes the page, making it dirty and making that
//!   node the owner;
//! * `readers - 1` further nodes read it (the initializer's own copy is the
//!   remaining read copy), so exactly `readers` nodes hold read copies;
//! * the *faulting* node — which optionally already holds one of those read
//!   copies — performs the measured access.
//!
//! The object's home (ASVM) / manager (XMM) node is distinct from all of
//! the above, matching the paper's *"general case in which the XMM stack is
//! remote from both the faulting node and the nodes that have read
//! copies"*.

use cluster::{ManagerKind, ScriptProgram, Ssi, Step};
use machvm::{Access, Inherit};
use svmsim::{Dur, NodeId};

/// What the measured access is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProbeAccess {
    /// A read fault.
    Read,
    /// A write fault.
    Write,
}

/// One fault-latency experiment.
#[derive(Clone, Copy, Debug)]
pub struct FaultProbeSpec {
    /// Which manager runs the cluster.
    pub kind: ManagerKind,
    /// Number of nodes holding read copies before the measured fault
    /// (including the initializer's downgraded copy). Zero means the page
    /// is only dirty at the initializer.
    pub read_copies: u16,
    /// The faulting node already holds one of the read copies.
    pub faulter_has_copy: bool,
    /// The measured access.
    pub access: ProbeAccess,
}

/// Result of a probe run.
#[derive(Clone, Debug)]
pub struct FaultProbeResult {
    /// Latency of the measured fault.
    pub latency: Dur,
    /// ASVM/XMMI protocol messages during the measured fault.
    pub protocol_messages: u64,
    /// Messages carrying page contents during the measured fault.
    pub page_messages: u64,
    /// Per-message-kind counters during the measured fault (the interned
    /// `asvm.msg.*` / `xmm.msg.*` / `emmi.*` keys), sorted by key.
    pub msg_counts: Vec<(&'static str, u64)>,
    /// Simulator events processed by the run (parallel-sweep accounting).
    pub events: u64,
}

/// Runs one fault-latency probe.
///
/// # Panics
///
/// Panics if the simulation fails to quiesce (protocol bug).
pub fn fault_probe(spec: FaultProbeSpec) -> FaultProbeResult {
    // Layout: node 0 = home/manager (and barrier coordinator),
    // node 1 = initializer, nodes 2.. = additional readers, last = faulter.
    let extra_readers = spec.read_copies.saturating_sub(1);
    let n_nodes = 3 + extra_readers;
    let mut ssi = Ssi::new(n_nodes.max(4), spec.kind, 7);
    let home = NodeId(0);
    let init = NodeId(1);
    let faulter = NodeId(n_nodes - 1);
    let mobj = ssi.create_object(home, 16, false);

    let mut tasks = Vec::new();
    for n in 0..n_nodes {
        let t = ssi.alloc_task();
        ssi.map_shared(
            t,
            NodeId(n),
            0,
            mobj,
            home,
            16,
            Access::Write,
            Inherit::Share,
        );
        tasks.push(t);
    }
    ssi.finalize();

    let page = 0u64;
    // Phase A: the initializer dirties the page.
    ssi.spawn(
        init,
        tasks[init.0 as usize],
        Box::new(ScriptProgram::new(vec![
            Step::Write {
                va_page: page,
                value: 0xD1,
            },
            Step::Done,
        ])),
    );
    ssi.run(1_000_000).expect("phase A quiesces");

    // Phase B: build up the read copies.
    if spec.read_copies > 0 {
        let mut phase_b: Vec<NodeId> = (0..extra_readers).map(|i| NodeId(2 + i)).collect();
        if spec.faulter_has_copy {
            phase_b.push(faulter);
        }
        for n in phase_b {
            let t = tasks[n.0 as usize];
            let now = ssi.world.now();
            ssi.world.node_mut(n).install_task(
                t,
                Box::new(ScriptProgram::new(vec![
                    Step::Read { va_page: page },
                    Step::Done,
                ])),
                now,
            );
            ssi.world.post(now, n, cluster::Msg::Resume(t));
        }
        ssi.run(1_000_000).expect("phase B quiesces");
    }

    // Phase C: the measured fault.
    ssi.world.stats_mut().reset();
    let t = tasks[faulter.0 as usize];
    let access = match spec.access {
        ProbeAccess::Read => Access::Read,
        ProbeAccess::Write => Access::Write,
    };
    let now = ssi.world.now();
    ssi.world.node_mut(faulter).install_task(
        t,
        Box::new(ScriptProgram::new(vec![
            Step::Touch {
                va_page: page,
                access,
            },
            Step::Done,
        ])),
        now,
    );
    ssi.world.post(now, faulter, cluster::Msg::Resume(t));
    ssi.run(1_000_000).expect("phase C quiesces");

    let tally = ssi
        .stats()
        .tally("fault.ms")
        .expect("the measured access must fault");
    assert_eq!(tally.count, 1, "exactly one measured fault expected");
    let stats = ssi.stats();
    let msg_counts: Vec<(&'static str, u64)> = stats
        .counters()
        .filter(|(k, v)| {
            *v > 0
                && (k.starts_with("asvm.msg.")
                    || k.starts_with("xmm.msg.")
                    || k.starts_with("emmi."))
        })
        .collect();
    FaultProbeResult {
        latency: tally.mean(),
        protocol_messages: stats.counter("sts.messages") + stats.counter("norma.messages"),
        page_messages: stats.counter("sts.page_messages") + stats.counter("norma.page_messages"),
        msg_counts,
        events: ssi.world.events_processed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asvm_write_fault_one_copy_single_digit_ms() {
        let r = fault_probe(FaultProbeSpec {
            kind: ManagerKind::asvm(),
            read_copies: 1,
            faulter_has_copy: false,
            access: ProbeAccess::Write,
        });
        let ms = r.latency.as_millis_f64();
        assert!(ms > 0.5 && ms < 10.0, "ASVM write fault {ms} ms");
    }

    #[test]
    fn xmm_write_fault_one_copy_pays_disk() {
        let r = fault_probe(FaultProbeSpec {
            kind: ManagerKind::xmm(),
            read_copies: 1,
            faulter_has_copy: false,
            access: ProbeAccess::Write,
        });
        let ms = r.latency.as_millis_f64();
        assert!(ms > 15.0 && ms < 90.0, "XMM write fault {ms} ms");
    }

    #[test]
    fn upgrade_faults_skip_page_transfer() {
        let r = fault_probe(FaultProbeSpec {
            kind: ManagerKind::asvm(),
            read_copies: 2,
            faulter_has_copy: true,
            access: ProbeAccess::Write,
        });
        assert_eq!(r.page_messages, 0, "upgrades must not move page contents");
    }

    #[test]
    fn latency_grows_with_readers() {
        let few = fault_probe(FaultProbeSpec {
            kind: ManagerKind::asvm(),
            read_copies: 2,
            faulter_has_copy: false,
            access: ProbeAccess::Write,
        });
        let many = fault_probe(FaultProbeSpec {
            kind: ManagerKind::asvm(),
            read_copies: 32,
            faulter_has_copy: false,
            access: ProbeAccess::Write,
        });
        assert!(many.latency > few.latency);
    }
}
