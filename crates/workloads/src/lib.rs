//! `workloads` — the evaluation workloads of the ASVM paper.
//!
//! * [`faultprobe`] — basic SVM page-fault latencies (Table 1, Figure 10);
//! * [`copychain`] — inherited-memory faults across fork chains (Figure 11);
//! * [`filescan`] — memory-mapped file read/write scans (Table 2,
//!   Figures 12/13);
//! * [`em3d`] — the EM3D electromagnetic wave propagation kernel ported to
//!   shared-memory communication (Table 3);
//! * [`patterns`] — reusable synthetic access patterns (migratory,
//!   producer/consumer, hotspot, uniform) for ablations and tests;
//! * [`megascale`] — per-node protocol-state gauges, event-queue telemetry
//!   and the compute-only event-loop saturation workload backing the
//!   128–1024-node `megascale` benchmark;
//! * [`tenants`] — the multi-tenant consolidation shape: thousands of
//!   Zipf-popular memory objects with mixed per-object read/write ratios
//!   and tasks arriving/departing in waves, driving the per-object
//!   adaptive strategy selection of [`asvm::policy`].

pub mod copychain;
pub mod em3d;
pub mod faultprobe;
pub mod filescan;
pub mod megascale;
pub mod patterns;
pub mod tenants;

pub use copychain::{copy_chain_probe, CopyChainResult, CopyChainSpec};
pub use em3d::{em3d_run, em3d_run_probed, Em3dOutcome, Em3dSpec};
pub use faultprobe::{fault_probe, FaultProbeResult, FaultProbeSpec, ProbeAccess};
pub use filescan::{file_scan, FileScanResult, FileScanSpec, ScanDir};
pub use megascale::{probe_state, run_eventloop, EventLoopOutcome, StateProbe};
pub use patterns::{
    run_pattern, run_pattern_backend, run_pattern_backend_seeded, run_pattern_faulted,
    run_pattern_mega, run_pattern_paced, FaultedOutcome, Pattern, PatternOutcome,
};
pub use tenants::{run_tenants, TenantsOutcome, TenantsSpec, Zipf};
