//! Synthetic shared-memory access patterns.
//!
//! Reusable program builders for the access shapes that stress different
//! parts of a DSM system: migratory ownership (write tokens hopping
//! between nodes), producer/consumer pairs, read-mostly hotspots and
//! uniform random mixes. The forwarding ablation and several integration
//! tests are built from these.

use cluster::{ManagerKind, Program, Ssi, Step, TaskEnv};
use machvm::{Access, Inherit, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use svmsim::{Dur, FaultPlan, MachineConfig, NodeId};
use transport::Transport;

/// Which synthetic pattern to run.
#[derive(Clone, Copy, Debug)]
pub enum Pattern {
    /// Every node in turn writes every page (barrier-sequenced rounds):
    /// maximal ownership migration.
    Migratory {
        /// Rounds of the rotation.
        rounds: u32,
    },
    /// Node 0 writes, everyone else reads, each round: one writer fanning
    /// out to many readers.
    ProducerConsumer {
        /// Production rounds.
        rounds: u32,
    },
    /// All nodes read a fixed hot set repeatedly; one node occasionally
    /// writes it.
    Hotspot {
        /// Read rounds per node.
        rounds: u32,
        /// A write is injected every `write_every` rounds.
        write_every: u32,
    },
    /// Uniformly random reads/writes (seeded), no barriers: raw protocol
    /// churn.
    Uniform {
        /// Operations per node.
        ops: u32,
        /// Fraction of writes, in percent.
        write_pct: u32,
        /// Seed.
        seed: u64,
    },
    /// Every node sequentially reads every page each round (barriered
    /// rounds): the file-scan shape — a pure stride-1 read stream, the
    /// prefetch engine's best case.
    Scan {
        /// Scan passes over the object.
        rounds: u32,
    },
    /// Round `r`: node `r % nodes` writes the whole region, then node
    /// `(r+1) % nodes` streams the first `read_pages` of it back in
    /// (barriered phases) — a copy chain whose reads always target
    /// remotely-owned dirty pages. With `read_pages` well short of the
    /// region, the reader's speculative window overshoots its interest
    /// and the next round's writer invalidates the overshoot unread —
    /// the prefetch-waste counter-case.
    Chain {
        /// Hand-off rounds.
        rounds: u32,
        /// Pages the reader consumes per round (clamped to the region).
        read_pages: u32,
    },
}

impl Pattern {
    /// Total memory accesses the pattern performs across all nodes — the
    /// analytic denominator of faults-per-kilo-access (counting accesses
    /// in the simulator would itself perturb nothing, but the closed form
    /// documents the shape).
    pub fn accesses(&self, nodes: u16, pages: u32) -> u64 {
        let (n, p) = (nodes as u64, pages as u64);
        match *self {
            // Each turn one node writes every page; nodes*rounds turns.
            Pattern::Migratory { rounds } => rounds as u64 * n * p,
            // Per round: one producer writes, nodes-1 consumers read.
            Pattern::ProducerConsumer { rounds } => rounds as u64 * p * n,
            Pattern::Hotspot { rounds, .. } => rounds as u64 * n * p,
            Pattern::Uniform { ops, .. } => ops as u64 * n,
            Pattern::Scan { rounds } => rounds as u64 * n * p,
            Pattern::Chain { rounds, read_pages } => {
                rounds as u64 * (p + u64::from(read_pages.min(pages)))
            }
        }
    }
}

/// Outcome of a pattern run.
#[derive(Clone, Copy, Debug)]
pub struct PatternOutcome {
    /// Mean fault latency.
    pub mean_fault_ms: f64,
    /// Faults completed.
    pub faults: u64,
    /// Protocol messages sent.
    pub messages: u64,
    /// Simulated wall-clock of the run, seconds.
    pub elapsed_s: f64,
    /// Simulator events processed by the run (parallel-sweep accounting).
    pub events: u64,
    /// Logical ASVM protocol messages (Σ `asvm.msg.*`) — unchanged by
    /// coalescing, which only merges them onto shared wire frames.
    pub asvm_msgs: u64,
    /// Physical ASVM wire frames: logical messages minus the subframes
    /// that shared a frame with an earlier one (`asvm.coalesce.merged`).
    /// Equal to `asvm_msgs` with coalescing off.
    pub asvm_frames: u64,
    /// Subframes that rode an earlier message's frame
    /// (`asvm.coalesce.merged`).
    pub coalesce_merged: u64,
    /// Owner hints piggybacked on outgoing data/ack frames
    /// (`asvm.coalesce.piggyback_hint`).
    pub coalesce_hints: u64,
    /// Ack-class subframes that shared a frame with page data
    /// (`asvm.coalesce.piggyback_ack`).
    pub coalesce_acks: u64,
    /// Messages on the STS backend (`sts.messages`).
    pub sts_msgs: u64,
    /// Messages on the NORMA-IPC backend (`norma.messages`).
    pub norma_msgs: u64,
    /// Messages on the RDMA backend (`rdma.messages`).
    pub rdma_msgs: u64,
    /// One-sided reads completed entirely by the target's NIC
    /// (`transport.rdma.read_served`).
    pub rdma_read_served: u64,
    /// One-sided reads the NIC had to raise to the target host
    /// (`transport.rdma.read_fallback`).
    pub rdma_read_fallback: u64,
    /// Speculative page requests issued by the prefetch engine
    /// (`asvm.prefetch.issued`).
    pub prefetch_issued: u64,
    /// Prefetched fills consumed by a later demand access
    /// (`asvm.prefetch.hit`).
    pub prefetch_hit: u64,
    /// Demand faults that caught their prefetch still in flight
    /// (`asvm.prefetch.late`).
    pub prefetch_late: u64,
    /// Prefetched fills evicted, invalidated, or transferred away before
    /// any demand access used them (`asvm.prefetch.wasted`).
    pub prefetch_wasted: u64,
    /// In-flight speculations cancelled by a stride break
    /// (`asvm.prefetch.cancelled`).
    pub prefetch_cancelled: u64,
    /// Predicted-window owner hints piggybacked for peers
    /// (`asvm.prefetch.hint`).
    pub prefetch_hints: u64,
    /// Speculative reads that went one-sided on the RDMA backend
    /// (`transport.rdma.prefetch_read`).
    pub rdma_prefetch_reads: u64,
    /// Objects whose data tier the online policy latched off for a
    /// mostly-wasted speculation record (`asvm.policy.prefetch_off`).
    pub policy_prefetch_off: u64,
}

impl PatternOutcome {
    /// ASVM wire frames per resolved page fault — the headline metric of
    /// the coalescing ablation (`BENCH_coalesce.json`).
    pub fn messages_per_fault(&self) -> f64 {
        if self.faults == 0 {
            return 0.0;
        }
        self.asvm_frames as f64 / self.faults as f64
    }

    /// Demand faults per thousand memory accesses — the prefetch
    /// ablation's headline rate (`BENCH_prefetch.json`); pass the
    /// pattern's analytic [`Pattern::accesses`] count.
    pub fn faults_per_kilo_access(&self, accesses: u64) -> f64 {
        if accesses == 0 {
            return 0.0;
        }
        self.faults as f64 * 1000.0 / accesses as f64
    }
}

struct PatternProgram {
    me: u16,
    nodes: u16,
    pages: u32,
    pattern: Pattern,
    round: u32,
    idx: u32,
    barrier: u32,
    phase: u8,
    rng: StdRng,
    /// Per-touch compute time ([`run_pattern_paced`]); `Dur::ZERO` keeps
    /// the classic back-to-back access stream.
    think: Dur,
    think_pending: bool,
}

impl PatternProgram {
    /// Marks a memory touch so the next step models `think` of compute
    /// before the following access.
    fn touch(&mut self, s: Step) -> Step {
        if self.think > Dur::ZERO {
            self.think_pending = true;
        }
        s
    }
}

impl Program for PatternProgram {
    fn step(&mut self, _env: &mut TaskEnv) -> Step {
        if self.think_pending {
            self.think_pending = false;
            return Step::Compute(self.think);
        }
        match self.pattern {
            Pattern::Migratory { rounds } => {
                // Round-robin turns: in round r, node (r % nodes) writes
                // all pages; everyone barriers between turns.
                let total_turns = rounds * self.nodes as u32;
                if self.round >= total_turns {
                    return Step::Done;
                }
                let turn_node = (self.round % self.nodes as u32) as u16;
                if turn_node == self.me && self.idx < self.pages {
                    let p = self.idx;
                    self.idx += 1;
                    return self.touch(Step::Write {
                        va_page: p as u64,
                        value: (self.round as u64) << 8 | p as u64,
                    });
                }
                self.idx = 0;
                let b = self.barrier;
                self.barrier += 1;
                self.round += 1;
                Step::Barrier(b)
            }
            Pattern::ProducerConsumer { rounds } => {
                if self.round >= rounds {
                    return Step::Done;
                }
                match self.phase {
                    0 => {
                        // Producer writes its batch.
                        if self.me == 0 && self.idx < self.pages {
                            let p = self.idx;
                            self.idx += 1;
                            return self.touch(Step::Write {
                                va_page: p as u64,
                                value: (self.round as u64) << 8 | p as u64,
                            });
                        }
                        self.phase = 1;
                        self.idx = 0;
                        let b = self.barrier;
                        self.barrier += 1;
                        Step::Barrier(b)
                    }
                    1 => {
                        // Consumers read everything.
                        if self.me != 0 && self.idx < self.pages {
                            let p = self.idx;
                            self.idx += 1;
                            return self.touch(Step::Read { va_page: p as u64 });
                        }
                        self.phase = 0;
                        self.idx = 0;
                        self.round += 1;
                        let b = self.barrier;
                        self.barrier += 1;
                        Step::Barrier(b)
                    }
                    _ => unreachable!(),
                }
            }
            Pattern::Hotspot {
                rounds,
                write_every,
            } => {
                if self.round >= rounds {
                    return Step::Done;
                }
                if self.idx < self.pages {
                    let p = self.idx;
                    self.idx += 1;
                    let writer_round = self.round % write_every == write_every - 1;
                    if writer_round && self.me == 0 {
                        return self.touch(Step::Write {
                            va_page: p as u64,
                            value: self.round as u64,
                        });
                    }
                    return self.touch(Step::Read { va_page: p as u64 });
                }
                self.idx = 0;
                self.round += 1;
                let b = self.barrier;
                self.barrier += 1;
                Step::Barrier(b)
            }
            Pattern::Uniform { ops, write_pct, .. } => {
                if self.round >= ops {
                    return Step::Done;
                }
                self.round += 1;
                let p = self.rng.gen_range(0..self.pages) as u64;
                let s = if self.rng.gen_range(0..100) < write_pct {
                    Step::Write {
                        va_page: p,
                        value: self.round as u64,
                    }
                } else {
                    Step::Read { va_page: p }
                };
                self.touch(s)
            }
            Pattern::Scan { rounds } => {
                if self.round >= rounds {
                    return Step::Done;
                }
                if self.idx < self.pages {
                    let p = self.idx;
                    self.idx += 1;
                    return self.touch(Step::Read { va_page: p as u64 });
                }
                self.idx = 0;
                self.round += 1;
                let b = self.barrier;
                self.barrier += 1;
                Step::Barrier(b)
            }
            Pattern::Chain { rounds, read_pages } => {
                if self.round >= rounds {
                    return Step::Done;
                }
                let writer = (self.round % self.nodes as u32) as u16;
                let reader = ((self.round + 1) % self.nodes as u32) as u16;
                match self.phase {
                    0 => {
                        if self.me == writer && self.idx < self.pages {
                            let p = self.idx;
                            self.idx += 1;
                            return self.touch(Step::Write {
                                va_page: p as u64,
                                value: (self.round as u64) << 8 | p as u64,
                            });
                        }
                        self.phase = 1;
                        self.idx = 0;
                        let b = self.barrier;
                        self.barrier += 1;
                        Step::Barrier(b)
                    }
                    1 => {
                        if self.me == reader && self.idx < read_pages.min(self.pages) {
                            let p = self.idx;
                            self.idx += 1;
                            return self.touch(Step::Read { va_page: p as u64 });
                        }
                        self.phase = 0;
                        self.idx = 0;
                        self.round += 1;
                        let b = self.barrier;
                        self.barrier += 1;
                        Step::Barrier(b)
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
}

/// Outcome of a pattern run under an active fault plan.
#[derive(Clone, Copy, Debug)]
pub struct FaultedOutcome {
    /// Whether every task finished (retry exhaustion can strand tasks).
    pub completed: bool,
    /// The usual pattern statistics.
    pub outcome: PatternOutcome,
    /// Messages the fault layer dropped (loss + blackout).
    pub dropped: u64,
    /// Messages the fault layer duplicated.
    pub duplicated: u64,
    /// Messages the fault layer delayed.
    pub delayed: u64,
    /// Frames retransmitted by the ASVM retry channel.
    pub resent: u64,
    /// Frames abandoned after retry exhaustion.
    pub exhausted: u64,
    /// Stalled requests the watchdog re-issued down the fallback chain.
    pub reissued: u64,
    /// Requests that fell all the way back to a pager re-fetch.
    pub refetched: u64,
    /// New owners elected by ownership reconstruction.
    pub elected: u64,
    /// Peer-suspicion events raised by the failure detector.
    pub suspected: u64,
}

/// Runs `pattern` on a fresh cluster and reports protocol statistics.
pub fn run_pattern(kind: ManagerKind, nodes: u16, pages: u32, pattern: Pattern) -> PatternOutcome {
    let out = run_pattern_faulted(kind, nodes, pages, pattern, FaultPlan::none());
    assert!(out.completed, "pattern tasks finish");
    out.outcome
}

/// [`run_pattern`] plus the megascale state probe: per-node protocol-state
/// bytes and event-queue telemetry read after the run (see
/// [`crate::megascale`]).
pub fn run_pattern_mega(
    kind: ManagerKind,
    nodes: u16,
    pages: u32,
    pattern: Pattern,
) -> (PatternOutcome, crate::megascale::StateProbe) {
    let (out, probe) = run_pattern_full(
        kind,
        nodes,
        pages,
        pattern,
        FaultPlan::none(),
        Dur::ZERO,
        None,
    );
    assert!(out.completed, "pattern tasks finish");
    (out.outcome, probe)
}

/// [`run_pattern_paced`] with the ASVM protocol carried on an explicit
/// transport backend — the construction site of the 3-way backend ×
/// pattern ablation. Tolerates stranded tasks like
/// [`run_pattern_faulted`] (a faulted RDMA run has no link-level ARQ, so
/// an exhausted watchdog legally strands a waiter) and reports through
/// [`FaultedOutcome`].
pub fn run_pattern_backend(
    kind: ManagerKind,
    transport: Transport,
    nodes: u16,
    pages: u32,
    pattern: Pattern,
    faults: FaultPlan,
    think: Dur,
) -> FaultedOutcome {
    run_pattern_full(kind, nodes, pages, pattern, faults, think, Some(transport)).0
}

/// [`run_pattern_backend`] with an explicit world seed (the prefetch
/// ablation's `ASVM_PREFETCH_SEED` knob). The default runners keep their
/// fixed seed so existing goldens are untouched.
#[allow(clippy::too_many_arguments)]
pub fn run_pattern_backend_seeded(
    kind: ManagerKind,
    transport: Transport,
    nodes: u16,
    pages: u32,
    pattern: Pattern,
    faults: FaultPlan,
    think: Dur,
    seed: u64,
) -> FaultedOutcome {
    run_pattern_seeded(
        kind,
        nodes,
        pages,
        pattern,
        faults,
        think,
        Some(transport),
        Some(seed),
    )
    .0
}

/// [`run_pattern`] with `think` of modeled compute after every memory
/// touch. Back-to-back streams (the `Dur::ZERO` default) race ahead of
/// in-flight readahead fills and book extra near-zero-latency faults, so
/// fault counts become sensitive to fill *arrival spacing*; a realistic
/// per-touch think time makes the fault denominator depend only on the
/// access pattern, which is what a messages-per-fault comparison needs.
pub fn run_pattern_paced(
    kind: ManagerKind,
    nodes: u16,
    pages: u32,
    pattern: Pattern,
    think: Dur,
) -> PatternOutcome {
    let (out, _) = run_pattern_full(kind, nodes, pages, pattern, FaultPlan::none(), think, None);
    assert!(out.completed, "pattern tasks finish");
    out.outcome
}

/// [`run_pattern`] on a machine with `faults` armed. Unlike the reliable
/// runner this tolerates stranded tasks (a retry-exhausted link legally
/// leaves waiters suspended) and reports them through
/// [`FaultedOutcome::completed`] instead of asserting.
pub fn run_pattern_faulted(
    kind: ManagerKind,
    nodes: u16,
    pages: u32,
    pattern: Pattern,
    faults: FaultPlan,
) -> FaultedOutcome {
    run_pattern_full(kind, nodes, pages, pattern, faults, Dur::ZERO, None).0
}

fn run_pattern_full(
    kind: ManagerKind,
    nodes: u16,
    pages: u32,
    pattern: Pattern,
    faults: FaultPlan,
    think: Dur,
    transport: Option<Transport>,
) -> (FaultedOutcome, crate::megascale::StateProbe) {
    run_pattern_seeded(kind, nodes, pages, pattern, faults, think, transport, None)
}

#[allow(clippy::too_many_arguments)]
fn run_pattern_seeded(
    kind: ManagerKind,
    nodes: u16,
    pages: u32,
    pattern: Pattern,
    faults: FaultPlan,
    think: Dur,
    transport: Option<Transport>,
    seed: Option<u64>,
) -> (FaultedOutcome, crate::megascale::StateProbe) {
    let seed = seed.unwrap_or(match pattern {
        Pattern::Uniform { seed, .. } => seed,
        _ => 17,
    });
    let faults_active = faults.is_active();
    let mut cfg = MachineConfig::paragon(nodes);
    cfg.faults = faults;
    let mut ssi = Ssi::with_machine(cfg, kind, seed);
    if let Some(t) = transport {
        ssi.set_asvm_transport(t);
    }
    let home = NodeId(0);
    let mobj = ssi.create_object(home, pages, false);
    let tasks: Vec<TaskId> = (0..nodes)
        .map(|n| {
            let t = ssi.alloc_task();
            ssi.map_shared(
                t,
                NodeId(n),
                0,
                mobj,
                home,
                pages,
                Access::Write,
                Inherit::Share,
            );
            t
        })
        .collect();
    ssi.finalize();
    ssi.set_barrier_parties(nodes as u32);
    for (i, t) in tasks.iter().enumerate() {
        ssi.spawn(
            NodeId(i as u16),
            *t,
            Box::new(PatternProgram {
                me: i as u16,
                nodes,
                pages,
                pattern,
                round: 0,
                idx: 0,
                barrier: 0,
                phase: 0,
                rng: StdRng::seed_from_u64(seed ^ (i as u64) << 32),
                think,
                think_pending: false,
            }),
        );
    }
    ssi.run(u64::MAX / 2).expect("pattern quiesces");
    let completed = ssi.all_done();
    let s = ssi.stats();
    if !faults_active {
        // The whole recovery layer is gated on the fault plan: a healthy
        // run must not arm heartbeats, suspect anyone, or re-issue
        // anything — otherwise baseline results would stop being
        // byte-identical to a build without the recovery layer.
        for (key, v) in s.counters() {
            assert!(
                !(key.starts_with("asvm.recover.") || key.starts_with("cluster.suspect.")),
                "healthy run bumped recovery counter {key} = {v}"
            );
        }
    }
    let probe = crate::megascale::probe_state(&ssi);
    let faults = s.tally("fault.ms");
    let asvm_msgs: u64 = s
        .counters()
        .filter(|(k, _)| k.starts_with("asvm.msg."))
        .map(|(_, v)| v)
        .sum();
    let merged = s.counter("asvm.coalesce.merged");
    let out = FaultedOutcome {
        completed,
        outcome: PatternOutcome {
            mean_fault_ms: faults.map(|t| t.mean().as_millis_f64()).unwrap_or(0.0),
            faults: faults.map(|t| t.count).unwrap_or(0),
            messages: s.counter("sts.messages")
                + s.counter("norma.messages")
                + s.counter("rdma.messages"),
            elapsed_s: ssi.world.now().as_secs_f64(),
            events: ssi.world.events_processed(),
            asvm_msgs,
            asvm_frames: asvm_msgs - merged,
            coalesce_merged: merged,
            coalesce_hints: s.counter("asvm.coalesce.piggyback_hint"),
            coalesce_acks: s.counter("asvm.coalesce.piggyback_ack"),
            sts_msgs: s.counter("sts.messages"),
            norma_msgs: s.counter("norma.messages"),
            rdma_msgs: s.counter("rdma.messages"),
            rdma_read_served: s.counter("transport.rdma.read_served"),
            rdma_read_fallback: s.counter("transport.rdma.read_fallback"),
            prefetch_issued: s.counter("asvm.prefetch.issued"),
            prefetch_hit: s.counter("asvm.prefetch.hit"),
            prefetch_late: s.counter("asvm.prefetch.late"),
            prefetch_wasted: s.counter("asvm.prefetch.wasted"),
            prefetch_cancelled: s.counter("asvm.prefetch.cancelled"),
            prefetch_hints: s.counter("asvm.prefetch.hint"),
            rdma_prefetch_reads: s.counter("transport.rdma.prefetch_read"),
            policy_prefetch_off: s.counter("asvm.policy.prefetch_off"),
        },
        dropped: s.counter("transport.fault.dropped") + s.counter("transport.fault.blackout"),
        duplicated: s.counter("transport.fault.duplicated"),
        delayed: s.counter("transport.fault.delayed"),
        resent: s.counter("asvm.retry.resent"),
        exhausted: s.counter("asvm.retry.exhausted"),
        reissued: s.counter("asvm.recover.reissue"),
        refetched: s.counter("asvm.recover.refetch"),
        elected: s.counter("asvm.recover.elected"),
        suspected: s.counter("cluster.suspect.count"),
    };
    (out, probe)
}

/// Compute-bound spin helper used by tests that need time to pass without
/// memory traffic.
pub fn spin(d: Dur) -> Step {
    Step::Compute(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migratory_pattern_migrates_ownership() {
        let out = run_pattern(ManagerKind::asvm(), 4, 8, Pattern::Migratory { rounds: 3 });
        // Each turn after the first re-faults the pages at the new writer.
        assert!(out.faults >= 8 * 3, "faults: {}", out.faults);
        assert!(out.mean_fault_ms > 0.5);
    }

    #[test]
    fn producer_consumer_fans_out_reads() {
        let out = run_pattern(
            ManagerKind::asvm(),
            4,
            8,
            Pattern::ProducerConsumer { rounds: 3 },
        );
        // 3 consumers x 8 pages x 3 rounds of reads (plus write upgrades).
        assert!(out.faults >= 72, "faults: {}", out.faults);
    }

    #[test]
    fn hotspot_reads_are_mostly_free_after_warmup() {
        let out = run_pattern(
            ManagerKind::asvm(),
            4,
            4,
            Pattern::Hotspot {
                rounds: 12,
                write_every: 6,
            },
        );
        // Reads hit after the first round except right after the writes:
        // far fewer faults than accesses (4 nodes x 4 pages x 12 rounds).
        assert!(out.faults < 4 * 4 * 12 / 2, "faults: {}", out.faults);
    }

    #[test]
    fn uniform_pattern_is_coherent_under_both_managers() {
        // Barrier-free random churn: the rawest protocol stress in the
        // suite (it caught a queued-request starvation bug during
        // development). Several seeds, both managers.
        for seed in [5u64, 6, 7, 1996] {
            for kind in [ManagerKind::asvm(), ManagerKind::xmm()] {
                let out = run_pattern(
                    kind,
                    4,
                    4,
                    Pattern::Uniform {
                        ops: 60,
                        write_pct: 30,
                        seed,
                    },
                );
                assert!(out.faults > 0);
                assert!(out.elapsed_s > 0.0);
            }
        }
    }

    #[test]
    fn coalescing_cuts_messages_per_fault_on_sharing_heavy_patterns() {
        // The acceptance bar of the coalescing ablation: ≥25% fewer wire
        // frames per resolved fault on sharing-heavy patterns. Readahead
        // is identical in both arms so the only difference is coalescing.
        let off_cfg = asvm::AsvmConfig::with_readahead(8);
        let on_cfg = off_cfg.coalesced();
        for pattern in [
            Pattern::ProducerConsumer { rounds: 4 },
            Pattern::Hotspot {
                rounds: 24,
                write_every: 4,
            },
        ] {
            // 200µs of compute per touch: enough for staggered readahead
            // fills to land before the next access in both arms, so the
            // fault denominator reflects the pattern, not fill spacing.
            let think = Dur::from_micros_f64(800.0);
            let off = run_pattern_paced(ManagerKind::Asvm(off_cfg), 4, 32, pattern, think);
            let on = run_pattern_paced(ManagerKind::Asvm(on_cfg), 4, 32, pattern, think);
            assert_eq!(
                off.coalesce_merged, 0,
                "off arm must not touch the combiner"
            );
            assert!(on.coalesce_merged > 0, "on arm must merge subframes");
            assert!(on.coalesce_hints > 0, "data/ack frames carry hints");
            let (m_off, m_on) = (off.messages_per_fault(), on.messages_per_fault());
            eprintln!(
                "{pattern:?}: {m_off:.2} -> {m_on:.2} frames/fault \
                 (merged {} hints {} acks {})",
                on.coalesce_merged, on.coalesce_hints, on.coalesce_acks
            );
            assert!(
                m_on <= 0.75 * m_off,
                "{pattern:?}: expected >=25% reduction, got {m_off:.2} -> {m_on:.2}"
            );
        }
    }

    #[test]
    fn uniform_churn_under_every_forwarding_config() {
        for cfg in [
            asvm::AsvmConfig::default(),
            asvm::AsvmConfig::fixed_distributed(),
            asvm::AsvmConfig::dynamic_only(),
            asvm::AsvmConfig::global_only(),
        ] {
            let out = run_pattern(
                ManagerKind::Asvm(cfg),
                4,
                4,
                Pattern::Uniform {
                    ops: 50,
                    write_pct: 40,
                    seed: 11,
                },
            );
            assert!(out.faults > 0);
        }
    }
}
